"""Level operators ``M_k, P_k, Q_k, R_k`` and the solves built on them.

These are the multi-customer matrices of paper §3.1/§5.4, assembled from
the station automata and the network-level routing:

* ``M_k`` — diagonal completion-rate matrix: ``[M_k]_{ii}`` is the total
  event rate out of state ``i ∈ Ξ_k`` (stored as a vector);
* ``P_k`` — embedded one-step probabilities for events that keep the
  population at ``k`` (stage moves and completions routed to another
  station);
* ``Q_k`` — embedded probabilities of a *departure*, landing in Ξ_{k−1};
* ``R_k`` — entrance operator Ξ_{k−1} → Ξ_k (a new task joins per the
  network entry vector).

Row invariant: ``P_k ε + Q_k ε = ε`` and ``R_k ε = ε``.

Derived objects (paper §4):

* ``τ'_k = (I − P_k)⁻¹ M_k⁻¹ ε`` — mean time until the next departure;
* ``Y_k = (I − P_k)⁻¹ Q_k``    — state seen just after that departure.

``V_k = (I − P_k)⁻¹ M_k⁻¹`` is **never formed densely**: each level keeps a
sparse LU factorization of ``(I − P_k)`` and exposes ``x ↦ x·Y_k`` as two
cheap operations (a transposed triangular solve and a sparse product),
which is what makes the distributed-cluster state spaces tractable.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro._util.linalg import left_solve
from repro.laqt.automata import Completion, Internal, StationAutomaton
from repro.laqt.states import LevelSpace
from repro.obs import runtime as _rt
from repro.resilience.errors import SingularLevelError, SpectralFallbackError

__all__ = [
    "LevelOperators",
    "SpectralDecomposition",
    "build_level",
    "build_entrance",
    "build_level_reference",
    "build_entrance_reference",
]

#: memory cap for one dense cached propagator (bytes of float64 entries);
#: dims above the derived threshold fall back to CSR storage.
PROPAGATOR_DENSE_BYTES = 32 << 20
#: column-block width of the multi-RHS solve that builds a propagator
PROPAGATOR_BLOCK_COLS = 128
#: thread cap of the column-parallel propagator build.  Only levels whose
#: dim exceeds the dense cap (CSR-destined propagators, where the
#: multi-RHS solve dominates) split their column blocks across threads;
#: each block writes a disjoint output slice through an independent
#: ``lu.solve`` call, so the result is bit-identical to the serial build.
PROPAGATOR_SOLVE_THREADS = min(4, os.cpu_count() or 1)
#: probe epochs of the spectral self-check: reconstructed powers are
#: compared against iterated gemvs at these exponents before the
#: decomposition is trusted (one near the transient, one deep enough to
#: stress eigenvalue powers).
SPECTRAL_PROBE_EPOCHS = (3, 64)
#: sup-norm tolerance of the probe check; beyond it the decomposition is
#: declared ill-conditioned and the solver falls back to the gemv path.
#: Matched to the 1e-10 cross-backend equivalence bar pinned in
#: benchmarks/test_ablation_spectral.py.
SPECTRAL_PROBE_TOL = 1e-10
#: eigenvalues within this distance of 1 belong to the unit eigenspace
#: (the Perron root is exactly 1 analytically; the computed one is 1±eps).
SPECTRAL_UNIT_TOL = 1e-9


@dataclass(frozen=True, eq=False)
class SpectralDecomposition:
    """Eigendecomposition of a row-stochastic refill operator ``T = Y_K R_K``.

    ``T = V diag(w) V^{-1}`` with right eigenvectors in the *columns* of
    ``V``.  Because ``P ε + Q ε = ε`` and ``R ε = ε``, ``T`` is
    row-stochastic: its dominant eigenvalue is exactly 1 with right
    eigenvector ``ε``, and the refill recurrence ``x_{i+1} = x_i T`` is
    the power iteration of paper §5.  Left propagation to *any* epoch is
    therefore closed-form,

    .. math:: x\\,T^i = ((x V) \\odot w^i)\\,V^{-1},

    and the refill part of the makespan is a geometric series over the
    non-unit spectrum.  The computed Perron eigenvalue carries O(eps)
    error, so the unit eigenspace (``|w − 1| ≤`` :data:`SPECTRAL_UNIT_TOL`)
    is deflated analytically: its coefficients contribute ``c·m`` to the
    series, never ``c (1 − w^m)/(1 − w)`` with a catastrophically small
    denominator.
    """

    #: eigenvalues of ``T`` (complex, unsorted — LAPACK order)
    w: np.ndarray
    #: right eigenvectors, one per column
    V: np.ndarray
    #: inverse eigenbasis (``T = V diag(w) V^{-1}``)
    Vinv: np.ndarray
    #: mask of the unit eigenspace (the Perron root; >1 entry only for
    #: reducible/periodic operators, which the probe check rejects anyway)
    unit: np.ndarray
    #: spectral gap ``1 − max|w_j|`` over the non-unit spectrum — the
    #: exact geometric convergence rate of the refill power iteration
    gap: float
    #: sup-norm residual of the probe-epoch self-check
    residual: float

    @property
    def dim(self) -> int:
        return self.w.shape[0]

    def propagate(self, x: np.ndarray, i: int) -> np.ndarray:
        """``x T^i`` in closed form (exact powers, no step accumulation)."""
        if i == 0:
            return np.asarray(x, dtype=float).copy()
        y = np.asarray(x, dtype=float) @ self.V
        return np.ascontiguousarray(((y * self.w**i) @ self.Vinv).real)

    def _coefficients(self, x: np.ndarray, tau: np.ndarray) -> np.ndarray:
        """Modal coefficients ``c_j`` of ``t_i = x T^i τ' = Σ_j c_j w_j^i``."""
        return (np.asarray(x, dtype=float) @ self.V) * (
            self.Vinv @ np.asarray(tau, dtype=float)
        )

    def epoch_times(self, x: np.ndarray, tau: np.ndarray, m: int) -> np.ndarray:
        """``[x T^i τ']_{i=0}^{m-1}`` — every refill epoch mean in O(m·D)."""
        if m <= 0:
            return np.zeros(0)
        c = self._coefficients(x, tau)
        # Powers in bounded chunks: keeps the (chunk × D) scratch small
        # for the N=10⁴-scale sweeps this path exists for.
        out = np.empty(m)
        chunk = 4096
        for i0 in range(0, m, chunk):
            i1 = min(i0 + chunk, m)
            powers = self.w[None, :] ** np.arange(i0, i1)[:, None]
            out[i0:i1] = (powers @ c).real
        return out

    def refill_time_sum(self, x: np.ndarray, tau: np.ndarray, m: int) -> float:
        """``Σ_{i=0}^{m-1} x T^i τ'`` as a geometric series (O(D) per call).

        The unit eigenspace contributes ``c·m`` exactly; every non-unit
        eigenvalue sums to ``c (1 − w^m)/(1 − w)``.
        """
        if m <= 0:
            return 0.0
        c = self._coefficients(x, tau)
        total = complex(m) * c[self.unit].sum()
        w = self.w[~self.unit]
        cr = c[~self.unit]
        total += (cr * (1.0 - w**m) / (1.0 - w)).sum()
        return float(total.real)


@dataclass
class LevelOperators:
    """Operators for one population level ``k`` (see module docstring)."""

    k: int
    space: LevelSpace
    #: total event rate per state (diagonal of M_k)
    rates: np.ndarray
    #: embedded same-level transition probabilities (CSR, dim × dim)
    P: sp.csr_matrix
    #: embedded departure probabilities (CSR, dim × dim_{k−1})
    Q: sp.csr_matrix
    #: entrance operator from the level below (CSR, dim_{k−1} × dim)
    R: sp.csr_matrix

    def __post_init__(self):
        self._lu: spla.SuperLU | None = None
        self._tau: np.ndarray | None = None
        self._prop_Y: "np.ndarray | sp.csr_matrix | None" = None
        self._prop_YR: "np.ndarray | sp.csr_matrix | None" = None
        self._spectral_YR: SpectralDecomposition | None = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of states at this level."""
        return self.space.dim

    @property
    def lu(self) -> spla.SuperLU:
        """Sparse LU of ``(I − P_k)``, built lazily and cached.

        Raises
        ------
        SingularLevelError
            When SuperLU reports the factor singular.  The structured
            error names the level, its dimension, and — when identifiable
            from vanishing rows — the station specs trapping the
            probability mass, instead of scipy's bare ``RuntimeError``.
        """
        if self._lu is None:
            ins = _rt.ACTIVE
            if ins is None:
                self._lu = self._factorize()
            else:
                with ins.span("factorize", level=self.k, dim=self.dim,
                              nnz=int(self.P.nnz)) as span:
                    self._lu = self._factorize()
                ins.count("repro_factorizations_total")
                if span is not None and span.wall is not None:
                    ins.observe("repro_factorization_seconds", span.wall)
        return self._lu

    def _factorize(self) -> spla.SuperLU:
        A = sp.identity(self.dim, format="csc") - self.P.tocsc()
        try:
            return spla.splu(A)
        except RuntimeError as exc:
            if "singular" not in str(exc).lower():
                raise
            raise self._singular_error(A, exc) from exc

    def _singular_error(self, A: sp.csc_matrix, exc: Exception) -> SingularLevelError:
        """Build a :class:`SingularLevelError` naming the offending stations."""
        automata = self.space.automata
        # Rows of (I − P_k) that vanished identify absorbing states; the
        # stations holding customers there are the specs to look at.
        zero_rows = np.flatnonzero(np.asarray(np.abs(A).sum(axis=1)).ravel() == 0.0)
        offenders = sorted(
            {
                automata[c].station.name
                for i in zero_rows
                for c, local in enumerate(self.space.states[i])
                if automata[c].count(local) > 0
            }
        )
        if not offenders:
            offenders = [a.station.name for a in automata]
        return SingularLevelError(
            f"sparse LU of (I − P_{self.k}) failed at level {self.k} "
            f"({self.dim} states): {exc}; suspect station spec(s): "
            + ", ".join(repr(n) for n in offenders),
            level=self.k,
            dim=self.dim,
            stations=offenders,
        )

    @property
    def tau(self) -> np.ndarray:
        """``τ'_k = (I − P_k)⁻¹ M_k⁻¹ ε``: mean time to the next departure."""
        if self._tau is None:
            self._tau = self.lu.solve(1.0 / self.rates)
            ins = _rt.ACTIVE
            if ins is not None:
                ins.count("repro_sparse_solves_total", kind="tau")
        return self._tau

    # ------------------------------------------------------------------
    def apply_Y(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k`` with ``Y_k = (I − P_k)⁻¹ Q_k`` (state after a departure)."""
        ins = _rt.ACTIVE
        if ins is not None:
            ins.count("repro_sparse_solves_total", kind="apply_Y")
        return left_solve(self.lu, np.asarray(x, dtype=float)) @ self.Q

    def apply_YR(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k R_k``: departure immediately followed by a refill."""
        return self.apply_Y(x) @ self.R

    def mean_epoch_time(self, x: np.ndarray) -> float:
        """Mean time to the next departure from state mix ``x``: ``x τ'_k``."""
        return float(np.asarray(x, dtype=float) @ self.tau)

    # -- cached propagators (paper §4.2, Case 2) -----------------------
    def dense_threshold(self) -> int:
        """Largest ``dim`` whose cached propagator is stored dense.

        The base cap keeps one dense ``dim × dim`` propagator under
        :data:`PROPAGATOR_DENSE_BYTES`.  Levels whose ``P_k`` is already
        dense-ish double the cap: the fill of ``(I − P_k)^{-1}`` then
        leaves CSR with no size advantage while its matvec is slower
        than the BLAS gemv.
        """
        cap = int(np.sqrt(PROPAGATOR_DENSE_BYTES / 8.0))
        density = self.P.nnz / max(self.dim * self.dim, 1)
        return 2 * cap if density > 0.02 else cap

    def _solve_columns(self, B: sp.spmatrix) -> np.ndarray:
        """``(I − P_k)^{-1} B`` through the cached LU, in column blocks.

        Blocking bounds the dense right-hand-side scratch to
        ``dim × PROPAGATOR_BLOCK_COLS`` regardless of how wide ``B`` is.
        Levels above the dense cap split the blocks across up to
        :data:`PROPAGATOR_SOLVE_THREADS` threads: each block is an
        independent read-only solve against the shared factors writing a
        disjoint slice of ``out``, so scheduling cannot change a bit.
        """
        lu = self.lu
        ncols = B.shape[1]
        out = np.empty((self.dim, ncols))
        Bc = B.tocsc()
        starts = range(0, ncols, PROPAGATOR_BLOCK_COLS)

        def solve_block(j0: int) -> None:
            j1 = min(j0 + PROPAGATOR_BLOCK_COLS, ncols)
            out[:, j0:j1] = lu.solve(Bc[:, j0:j1].toarray())

        workers = self._solve_column_threads(len(starts))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for _ in pool.map(solve_block, starts):
                    pass
        else:
            for j0 in starts:
                solve_block(j0)
        return out

    def _solve_column_threads(self, nblocks: int) -> int:
        """Thread count of the propagator build: 1 below the dense cap."""
        if nblocks < 2 or self.dim <= self.dense_threshold():
            return 1
        return max(1, min(nblocks, PROPAGATOR_SOLVE_THREADS))

    def propagator_Y(self) -> "np.ndarray | sp.csr_matrix":
        """Cached ``Y_k = (I − P_k)^{-1} Q_k`` as an explicit matrix.

        Built once per level by a blocked multi-column solve over ``Q_k``;
        stored dense when ``dim ≤`` :meth:`dense_threshold`, CSR above it.
        Amortizes the drain cascade: every later ``x Y_k`` is one gemv.
        """
        if self._prop_Y is None:
            self._prop_Y = self._build_propagator("Y")
        return self._prop_Y

    def propagator_YR(self) -> "np.ndarray | sp.csr_matrix":
        """Cached refill operator ``Y_k R_k`` (one matrix per level).

        This is the fixed operator every refill epoch applies (paper
        §4.2, Case 2): with it cached, the whole refill phase is a tight
        gemv recurrence ``x_{j+1} = x_j · (Y_K R_K)``.
        """
        if self._prop_YR is None:
            self._prop_YR = self._build_propagator("YR")
        return self._prop_YR

    def _build_propagator(self, kind: str) -> "np.ndarray | sp.csr_matrix":
        ins = _rt.ACTIVE
        if ins is None:
            return self._propagator(kind)
        with ins.span(
            "propagator", level=self.k, kind=kind, dim=self.dim
        ) as span:
            mat = self._propagator(kind)
        storage = "dense" if isinstance(mat, np.ndarray) else "csr"
        if span is not None:
            span.attrs["storage"] = storage
        ins.count("repro_propagators_built_total", kind=kind, storage=storage)
        return mat

    def _propagator(self, kind: str) -> "np.ndarray | sp.csr_matrix":
        if kind == "Y":
            Y = self._solve_columns(self.Q)
            if self.dim <= self.dense_threshold():
                return Y
            return sp.csr_matrix(Y)
        YR = self.propagator_Y() @ self.R
        # dense @ csr yields ndarray; csr @ csr stays sparse — keep each.
        return YR if isinstance(YR, np.ndarray) else sp.csr_matrix(YR)

    def step_Y(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k`` through the cached propagator (one gemv)."""
        return np.asarray(x, dtype=float) @ self.propagator_Y()

    def step_YR(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k R_k`` through the cached propagator (one gemv)."""
        return np.asarray(x, dtype=float) @ self.propagator_YR()

    # -- spectral refill engine (paper §5: the refill is a power iteration) --
    def spectral_YR(self) -> SpectralDecomposition:
        """Cached eigendecomposition of the refill operator ``Y_k R_k``.

        Built once per level under an ``eig_decompose`` span and
        self-checked at the :data:`SPECTRAL_PROBE_EPOCHS` before being
        trusted — reconstructed powers must match iterated gemvs to
        :data:`SPECTRAL_PROBE_TOL` in sup norm.

        Raises
        ------
        SpectralFallbackError
            Reason-coded refusal (``dim-cap`` / ``eig-failed`` /
            ``nonfinite`` / ``residual``) when the decomposition is
            unavailable or numerically untrustworthy.  Callers downgrade
            to the cached-propagator gemv path; a wrong answer is never
            produced from a bad eigenbasis.
        """
        if self._spectral_YR is None:
            ins = _rt.ACTIVE
            if ins is None:
                self._spectral_YR = self._eig_decompose()
            else:
                with ins.span("eig_decompose", level=self.k,
                              dim=self.dim) as span:
                    self._spectral_YR = self._eig_decompose()
                if span is not None:
                    span.attrs["gap"] = self._spectral_YR.gap
                    span.attrs["residual"] = self._spectral_YR.residual
        return self._spectral_YR

    def _eig_decompose(self) -> SpectralDecomposition:
        T = self.propagator_YR()
        if not isinstance(T, np.ndarray):
            raise SpectralFallbackError(
                f"level {self.k}: cached Y·R propagator is CSR "
                f"(dim {self.dim} over the dense threshold "
                f"{self.dense_threshold()}); eigendecomposition would "
                "densify it",
                cause="dim-cap", level=self.k, dim=self.dim,
            )
        try:
            w, V = np.linalg.eig(T)
            Vinv = np.linalg.inv(V)
            # One Newton step on the inverse (X ← X(2I − VX)) shaves an
            # order of magnitude off the reconstruction error of mildly
            # ill-conditioned eigenbases for two extra matmuls.
            Vinv = Vinv @ (2.0 * np.eye(V.shape[0]) - V @ Vinv)
        except np.linalg.LinAlgError as exc:
            raise SpectralFallbackError(
                f"level {self.k}: eigendecomposition of Y·R failed: {exc}",
                cause="eig-failed", level=self.k, dim=self.dim,
            ) from exc
        if not (np.all(np.isfinite(w.view(float)))
                and np.all(np.isfinite(V.view(float)))
                and np.all(np.isfinite(Vinv.view(float)))):
            raise SpectralFallbackError(
                f"level {self.k}: eigendecomposition of Y·R contains "
                "non-finite entries",
                cause="nonfinite", level=self.k, dim=self.dim,
            )
        unit = np.abs(w - 1.0) <= SPECTRAL_UNIT_TOL
        rest = np.abs(w[~unit])
        gap = float(1.0 - rest.max()) if rest.size else 1.0
        decomp = SpectralDecomposition(
            w=w, V=V, Vinv=Vinv, unit=unit, gap=gap, residual=0.0,
        )
        # Probe check: closed-form powers must agree with iterated gemvs
        # from a uniform probe mix before the decomposition is trusted.
        probe = np.full(self.dim, 1.0 / self.dim)
        residual = 0.0
        x = probe
        at = 0
        residuals: list[float] = []
        for i in sorted(SPECTRAL_PROBE_EPOCHS):
            for _ in range(i - at):
                x = x @ T
            at = i
            r = float(np.max(np.abs(decomp.propagate(probe, i) - x)))
            residuals.append(r)
            residual = max(residual, r)
        if residual > SPECTRAL_PROBE_TOL:
            raise SpectralFallbackError(
                f"level {self.k}: spectral probe residual {residual:.3e} "
                f"over {SPECTRAL_PROBE_TOL:.1e} at epochs "
                f"{tuple(sorted(SPECTRAL_PROBE_EPOCHS))}; eigenbasis too "
                "ill-conditioned to trust",
                cause="residual", level=self.k, dim=self.dim,
                residuals=residuals,
            )
        object.__setattr__(decomp, "residual", residual)
        return decomp

    # -- cache-extraction surface (repro.serve.cache byte accounting) --
    @staticmethod
    def _stored_bytes(obj) -> int:
        """Bytes held by one cached artifact (ndarray, CSR, or None)."""
        if obj is None:
            return 0
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if sp.issparse(obj):
            return int(obj.data.nbytes + obj.indices.nbytes
                       + obj.indptr.nbytes)
        return 0

    def cached_bytes(self) -> int:
        """Resident bytes of this level: operators plus every lazy cache.

        Counts the assembled ``P/Q/R`` and rate vector, then whatever the
        lazy surfaces have materialized so far — ``τ'``, the LU factors
        (``SuperLU.nnz`` entries at 12 bytes each: float64 value plus an
        int32 index), the dense/CSR propagators and the spectral
        eigentriple.  This is the number the model cache's byte-budget
        eviction sums, so it grows as a model warms up.
        """
        total = int(self.rates.nbytes)
        for mat in (self.P, self.Q, self.R):
            total += self._stored_bytes(mat)
        total += self._stored_bytes(self._tau)
        total += self._stored_bytes(self._prop_Y)
        total += self._stored_bytes(self._prop_YR)
        if self._lu is not None:
            total += 12 * int(getattr(self._lu, "nnz", 0) or 0)
        sd = self._spectral_YR
        if sd is not None:
            total += int(sd.w.nbytes + sd.V.nbytes + sd.Vinv.nbytes
                         + sd.unit.nbytes)
        return total

    def cache_info(self) -> dict:
        """What this level holds warm (one row of a cache status doc)."""
        def storage(obj) -> str | None:
            if obj is None:
                return None
            return "dense" if isinstance(obj, np.ndarray) else "csr"

        return {
            "level": self.k,
            "dim": self.dim,
            "nnz": int(self.P.nnz + self.Q.nnz + self.R.nnz),
            "bytes": self.cached_bytes(),
            "lu": self._lu is not None,
            "tau": self._tau is not None,
            "propagator_Y": storage(self._prop_Y),
            "propagator_YR": storage(self._prop_YR),
            "spectral": self._spectral_YR is not None,
        }

    def dense_Y(self) -> np.ndarray:
        """Dense ``Y_k`` (tests/ablations only — quadratic memory in ``dim``)."""
        inv = self.lu.solve(np.eye(self.dim))
        return inv @ self.Q.toarray()

    def dense_V(self) -> np.ndarray:
        """Dense ``V_k = (I − P_k)⁻¹ M_k⁻¹`` (tests/ablations only — quadratic
        memory in ``dim``)."""
        inv = self.lu.solve(np.eye(self.dim))
        return inv @ np.diag(1.0 / self.rates)


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]) ++ [0..counts[1]) ++ …`` as one flat array."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


def _expand(ptr: np.ndarray, gids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR-expand a per-row gid array over a per-gid slot table.

    Returns ``(rows, slots)``: ``rows[e]`` is the position in ``gids`` the
    ``e``-th expanded entry came from, ``slots[e]`` the flat table slot —
    each row is repeated once per table entry of its gid, in table order.
    """
    counts = ptr[gids + 1] - ptr[gids]
    rows = np.repeat(np.arange(gids.shape[0], dtype=np.int64), counts)
    if rows.size == 0:
        return rows, rows
    slots = ptr[gids][rows] + _ragged_arange(counts)
    return rows, slots


def _csr_from_parts(
    v: np.ndarray,
    c: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """Canonical CSR from verified parts, skipping scipy's constructor.

    The caller guarantees row-major sorted indices with no duplicates, so
    ``check_format``/canonicalization would only re-derive what the
    lexsort already proved.  The arrays are attached directly (index
    dtype downcast once, matching what scipy's own constructor would
    pick) and the canonical-format flags set, which shaves the dominant
    fixed cost off small-dimension level assembly.
    """
    nnz = int(indptr[-1])
    idx_dtype = (
        np.int32
        if max(int(shape[1]), nnz) <= np.iinfo(np.int32).max
        else np.int64
    )
    out = sp.csr_matrix.__new__(sp.csr_matrix)
    out.data = v
    out.indices = c.astype(idx_dtype, copy=False)
    out.indptr = indptr.astype(idx_dtype, copy=False)
    out._shape = (int(shape[0]), int(shape[1]))
    out.has_sorted_indices = True
    out.has_canonical_format = True
    return out


def _coo_to_csr(
    rows: list[np.ndarray],
    cols: list[np.ndarray],
    vals: list[np.ndarray],
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """COO batches → canonical CSR, bypassing scipy's slow COO path.

    When no ``(row, col)`` pair repeats — the common case for the §5.4
    operators — the canonical CSR is built directly from a lexsort, which
    yields bit-identical data to ``csr_matrix((vals, (rows, cols)))`` at a
    fraction of the constructor overhead.  Batches that already arrive in
    row-major order (single-station operators like ``R_k``) skip the sort
    outright, and the final matrix is assembled by
    :func:`_csr_from_parts` without re-validating what the sort proved.
    Duplicates fall back to scipy so the summation semantics stay exactly
    the historical ones.
    """
    if not rows:
        return sp.csr_matrix(shape)
    if len(rows) == 1:
        r, c, v = rows[0], cols[0], vals[0]
    else:
        r = np.concatenate(rows)
        c = np.concatenate(cols)
        v = np.concatenate(vals)
    # Strictly increasing (row, col) pairs mean already sorted *and*
    # duplicate-free — one O(nnz) scan replacing the lexsort entirely.
    presorted = r.size < 2 or bool(
        ((r[1:] > r[:-1]) | ((r[1:] == r[:-1]) & (c[1:] > c[:-1]))).all()
    )
    if not presorted:
        order = np.lexsort((c, r))
        r, c, v = r[order], c[order], v[order]
        if bool(((r[1:] == r[:-1]) & (c[1:] == c[:-1])).any()):
            return sp.csr_matrix((v, (r, c)), shape=shape)
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(r, minlength=shape[0]), out=indptr[1:])
    return _csr_from_parts(v, c, indptr, shape)


def build_level(
    automata: Sequence[StationAutomaton],
    routing: np.ndarray,
    exit_vec: np.ndarray,
    entry_vec: np.ndarray,
    space_k: LevelSpace,
    space_km1: LevelSpace,
) -> LevelOperators:
    """Assemble the operators for level ``k = space_k.k`` (vectorized).

    Implements the construction rules of §5.4 — only one customer moves
    per event; a completion at station ``c`` either routes into station
    ``c2`` (probability ``routing[c, c2]``, applying the receiving
    automaton's arrival split) and stays in Ξ_k, or exits the network
    (probability ``exit_vec[c]``) and lands in Ξ_{k−1} — but over whole
    batches of states at once: per-automaton tables supply every local
    transition, and the ranking arrays of :class:`LevelSpace` turn "one
    local move" into global column indices arithmetically.  Produces the
    same operators as :func:`build_level_reference` (bit-identical for
    single-event-per-local-state stations; up to summation-order rounding
    otherwise).
    """
    k = space_k.k
    if k < 1:
        raise ValueError(f"levels start at k=1, got {k}")
    dim = space_k.dim
    dim_dn = space_km1.dim
    n_stations = len(automata)
    reg = space_k.registry
    tbs = reg.tables
    G, CNT, REM, CUM = space_k.gids, space_k.counts, space_k.rem, space_k.cumterm

    # M_k diagonal: accumulate per-station local totals in station order so
    # the floating-point sums match the historical event-order accumulation.
    rates = np.zeros(dim)
    for c in range(n_stations):
        rates += tbs[c].total_rate[G[:, c]]
    if not np.all(rates > 0.0):  # pragma: no cover - impossible for k >= 1
        i = int(np.flatnonzero(rates <= 0.0)[0])
        raise RuntimeError(f"state {space_k.states[i]!r} at level {k} has no events")

    P_r: list[np.ndarray] = []
    P_c: list[np.ndarray] = []
    P_v: list[np.ndarray] = []
    Q_r: list[np.ndarray] = []
    Q_c: list[np.ndarray] = []
    Q_v: list[np.ndarray] = []

    for c in range(n_stations):
        tb = tbs[c]
        g = G[:, c]
        # -- internal stage moves: same load, one digit changes ----------
        if tb.int_rate.size:
            rexp, slots = _expand(tb.int_ptr, g)
            if rexp.size:
                w = tb.int_rate[slots] / rates[rexp]
                stride = reg.T[c + 1][REM[rexp, c + 1]]
                P_r.append(rexp)
                P_c.append(rexp + (tb.int_tpos[slots] - tb.pos_of[g[rexp]]) * stride)
                P_v.append(w)
        # -- completions: one customer ready to leave station c ----------
        if not tb.comp_rate.size:
            continue
        rexp, slots = _expand(tb.comp_ptr, g)
        if not rexp.size:
            continue
        wpr = (tb.comp_rate[slots] / rates[rexp]) * tb.comp_pr[slots]
        tpos = tb.comp_tpos[slots]
        r_c = REM[rexp, c]
        n_c = CNT[rexp, c]
        for c2 in range(n_stations):
            pmove = float(routing[c, c2])
            if pmove <= 0.0:
                continue
            tb2 = tbs[c2]
            # Arrival source: the post-departure state when the customer
            # re-enters c, the untouched local state of c2 otherwise.
            g2 = tb2.offset[n_c - 1] + tpos if c2 == c else G[rexp, c2]
            sub, aslots = _expand(tb2.arr_ptr, g2)
            if not sub.size:
                continue
            rexp2 = rexp[sub]
            vals = (wpr[sub] * pmove) * tb2.arr_p[aslots]
            apos = tb2.arr_tpos[aslots]
            if c2 == c:
                stride = reg.T[c + 1][REM[rexp2, c + 1]]
                cols = rexp2 + (apos - tb.pos_of[g[rexp2]]) * stride
            elif c2 > c:
                # Suffix after c2 keeps its rank terms; stations c..c2
                # re-rank with the customer in transit (r' = r + 1).
                cols = CUM[rexp2, c] + (
                    reg.head[c][r_c[sub], n_c[sub] - 1]
                    + tpos[sub] * reg.T[c + 1][r_c[sub] - n_c[sub] + 1]
                )
                for cm in range(c + 1, c2):
                    r_m = REM[rexp2, cm] + 1
                    n_m = CNT[rexp2, cm]
                    cols += (
                        reg.head[cm][r_m, n_m]
                        + tbs[cm].pos_of[G[rexp2, cm]] * reg.T[cm + 1][r_m - n_m]
                    )
                r_2 = REM[rexp2, c2]
                n_2 = CNT[rexp2, c2]
                cols += (
                    reg.head[c2][r_2 + 1, n_2 + 1]
                    + apos * reg.T[c2 + 1][r_2 - n_2]
                )
                cols += rexp2 - CUM[rexp2, c2 + 1]
            else:
                # c2 < c: the arrival upstream shifts loads between c2 and c.
                r_2 = REM[rexp2, c2]
                n_2 = CNT[rexp2, c2]
                cols = CUM[rexp2, c2] + (
                    reg.head[c2][r_2, n_2 + 1]
                    + apos * reg.T[c2 + 1][r_2 - n_2 - 1]
                )
                for cm in range(c2 + 1, c):
                    r_m = REM[rexp2, cm] - 1
                    n_m = CNT[rexp2, cm]
                    cols += (
                        reg.head[cm][r_m, n_m]
                        + tbs[cm].pos_of[G[rexp2, cm]] * reg.T[cm + 1][r_m - n_m]
                    )
                cols += (
                    reg.head[c][r_c[sub] - 1, n_c[sub] - 1]
                    + tpos[sub] * reg.T[c + 1][r_c[sub] - n_c[sub]]
                )
                cols += rexp2 - CUM[rexp2, c + 1]
            P_r.append(rexp2)
            P_c.append(cols)
            P_v.append(vals)
        # -- departures from the network: land in Ξ_{k−1} ----------------
        if float(exit_vec[c]) > 0.0:
            qcols = rexp - CUM[rexp, c + 1] + (
                reg.head[c][r_c - 1, n_c - 1] + tpos * reg.T[c + 1][r_c - n_c]
            )
            for cm in range(c):
                r_m = REM[rexp, cm] - 1
                n_m = CNT[rexp, cm]
                qcols += (
                    reg.head[cm][r_m, n_m]
                    + tbs[cm].pos_of[G[rexp, cm]] * reg.T[cm + 1][r_m - n_m]
                )
            Q_r.append(rexp)
            Q_c.append(qcols)
            Q_v.append(wpr * float(exit_vec[c]))

    P = _coo_to_csr(P_r, P_c, P_v, (dim, dim))
    Q = _coo_to_csr(Q_r, Q_c, Q_v, (dim, dim_dn))
    R = build_entrance(automata, entry_vec, space_km1, space_k)
    return LevelOperators(k=k, space=space_k, rates=rates, P=P, Q=Q, R=R)


def build_entrance(
    automata: Sequence[StationAutomaton],
    entry_vec: np.ndarray,
    space_from: LevelSpace,
    space_to: LevelSpace,
) -> sp.csr_matrix:
    """The entrance operator ``R_k : Ξ_{k−1} → Ξ_k`` (one task joins).

    Vectorized: Ξ_{k−1}'s ranking arrays plus one arrival-table expansion
    produce the Ξ_k column indices directly — the level-``k`` states are
    never enumerated here.
    """
    if space_to.k != space_from.k + 1:
        raise ValueError(
            f"entrance must raise the level by one, got {space_from.k} → {space_to.k}"
        )
    n_stations = len(automata)
    # The destination registry is guaranteed to cover loads up to k.
    reg = space_to.registry
    tbs = reg.tables
    G, CNT, REM, CUM = (
        space_from.gids,
        space_from.counts,
        space_from.rem,
        space_from.cumterm,
    )
    R_r: list[np.ndarray] = []
    R_c: list[np.ndarray] = []
    R_v: list[np.ndarray] = []
    for c in range(n_stations):
        pc = float(entry_vec[c])
        if pc <= 0.0:
            continue
        tb = tbs[c]
        rexp, aslots = _expand(tb.arr_ptr, G[:, c])
        if not rexp.size:
            continue
        apos = tb.arr_tpos[aslots]
        r_c = REM[rexp, c]
        n_c = CNT[rexp, c]
        # Suffix after c is untouched; prefix re-ranks one level up.
        cols = rexp - CUM[rexp, c + 1] + (
            reg.head[c][r_c + 1, n_c + 1] + apos * reg.T[c + 1][r_c - n_c]
        )
        for cm in range(c):
            r_m = REM[rexp, cm] + 1
            n_m = CNT[rexp, cm]
            cols += (
                reg.head[cm][r_m, n_m]
                + tbs[cm].pos_of[G[rexp, cm]] * reg.T[cm + 1][r_m - n_m]
            )
        R_r.append(rexp)
        R_c.append(cols)
        R_v.append(pc * tb.arr_p[aslots])
    return _coo_to_csr(R_r, R_c, R_v, (space_from.dim, space_to.dim))


def build_level_reference(
    automata: Sequence[StationAutomaton],
    routing: np.ndarray,
    exit_vec: np.ndarray,
    entry_vec: np.ndarray,
    space_k: LevelSpace,
    space_km1: LevelSpace,
) -> LevelOperators:
    """Pure-Python reference assembly (the historical per-state loops).

    Kept as the semantic baseline for :func:`build_level`: equivalence
    tests pin the vectorized path against it, and
    ``TransientModel(assembly="reference")`` selects it for ablations.
    """
    k = space_k.k
    if k < 1:
        raise ValueError(f"levels start at k=1, got {k}")
    dim = space_k.dim
    dim_dn = space_km1.dim
    n_stations = len(automata)

    rates = np.zeros(dim)
    P_rows: list[int] = []
    P_cols: list[int] = []
    P_vals: list[float] = []
    Q_rows: list[int] = []
    Q_cols: list[int] = []
    Q_vals: list[float] = []

    for i, state in enumerate(space_k.states):
        events: list[tuple[int, Internal | Completion]] = []
        total = 0.0
        for c in range(n_stations):
            for ev in automata[c].events(state[c]):
                events.append((c, ev))
                total += ev.rate
        if total <= 0.0:  # pragma: no cover - impossible for k >= 1
            raise RuntimeError(f"state {state!r} at level {k} has no events")
        rates[i] = total
        for c, ev in events:
            w = ev.rate / total
            if isinstance(ev, Internal):
                tgt = state[:c] + (ev.target,) + state[c + 1 :]
                P_rows.append(i)
                P_cols.append(space_k.index[tgt])
                P_vals.append(w)
                continue
            # Completion at station c: enumerate post-departure local states.
            for pr, local_after in ev.outcomes:
                base = state[:c] + (local_after,) + state[c + 1 :]
                # Route to another station (or back into c).
                for c2 in range(n_stations):
                    pmove = routing[c, c2]
                    if pmove <= 0:
                        continue
                    for pa, local_in in automata[c2].arrivals(base[c2]):
                        tgt = base[:c2] + (local_in,) + base[c2 + 1 :]
                        P_rows.append(i)
                        P_cols.append(space_k.index[tgt])
                        P_vals.append(w * pr * pmove * pa)
                # Leave the network.
                if exit_vec[c] > 0:
                    Q_rows.append(i)
                    Q_cols.append(space_km1.index[base])
                    Q_vals.append(w * pr * exit_vec[c])

    P = sp.csr_matrix((P_vals, (P_rows, P_cols)), shape=(dim, dim))
    Q = sp.csr_matrix((Q_vals, (Q_rows, Q_cols)), shape=(dim, dim_dn))
    R = build_entrance_reference(automata, entry_vec, space_km1, space_k)
    return LevelOperators(k=k, space=space_k, rates=rates, P=P, Q=Q, R=R)


def build_entrance_reference(
    automata: Sequence[StationAutomaton],
    entry_vec: np.ndarray,
    space_from: LevelSpace,
    space_to: LevelSpace,
) -> sp.csr_matrix:
    """Pure-Python reference for :func:`build_entrance` (per-state loops)."""
    if space_to.k != space_from.k + 1:
        raise ValueError(
            f"entrance must raise the level by one, got {space_from.k} → {space_to.k}"
        )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_stations = len(automata)
    for i, state in enumerate(space_from.states):
        for c in range(n_stations):
            pc = entry_vec[c]
            if pc <= 0:
                continue
            for pa, local_in in automata[c].arrivals(state[c]):
                tgt = state[:c] + (local_in,) + state[c + 1 :]
                rows.append(i)
                cols.append(space_to.index[tgt])
                vals.append(pc * pa)
    return sp.csr_matrix((vals, (rows, cols)), shape=(space_from.dim, space_to.dim))
