"""Level operators ``M_k, P_k, Q_k, R_k`` and the solves built on them.

These are the multi-customer matrices of paper §3.1/§5.4, assembled from
the station automata and the network-level routing:

* ``M_k`` — diagonal completion-rate matrix: ``[M_k]_{ii}`` is the total
  event rate out of state ``i ∈ Ξ_k`` (stored as a vector);
* ``P_k`` — embedded one-step probabilities for events that keep the
  population at ``k`` (stage moves and completions routed to another
  station);
* ``Q_k`` — embedded probabilities of a *departure*, landing in Ξ_{k−1};
* ``R_k`` — entrance operator Ξ_{k−1} → Ξ_k (a new task joins per the
  network entry vector).

Row invariant: ``P_k ε + Q_k ε = ε`` and ``R_k ε = ε``.

Derived objects (paper §4):

* ``τ'_k = (I − P_k)⁻¹ M_k⁻¹ ε`` — mean time until the next departure;
* ``Y_k = (I − P_k)⁻¹ Q_k``    — state seen just after that departure.

``V_k = (I − P_k)⁻¹ M_k⁻¹`` is **never formed densely**: each level keeps a
sparse LU factorization of ``(I − P_k)`` and exposes ``x ↦ x·Y_k`` as two
cheap operations (a transposed triangular solve and a sparse product),
which is what makes the distributed-cluster state spaces tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro._util.linalg import left_solve
from repro.laqt.automata import Completion, Internal, StationAutomaton
from repro.laqt.states import LevelSpace
from repro.obs import runtime as _rt
from repro.resilience.errors import SingularLevelError

__all__ = ["LevelOperators", "build_level", "build_entrance"]


@dataclass
class LevelOperators:
    """Operators for one population level ``k`` (see module docstring)."""

    k: int
    space: LevelSpace
    #: total event rate per state (diagonal of M_k)
    rates: np.ndarray
    #: embedded same-level transition probabilities (CSR, dim × dim)
    P: sp.csr_matrix
    #: embedded departure probabilities (CSR, dim × dim_{k−1})
    Q: sp.csr_matrix
    #: entrance operator from the level below (CSR, dim_{k−1} × dim)
    R: sp.csr_matrix

    def __post_init__(self):
        self._lu: spla.SuperLU | None = None
        self._tau: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of states at this level."""
        return self.space.dim

    @property
    def lu(self) -> spla.SuperLU:
        """Sparse LU of ``(I − P_k)``, built lazily and cached.

        Raises
        ------
        SingularLevelError
            When SuperLU reports the factor singular.  The structured
            error names the level, its dimension, and — when identifiable
            from vanishing rows — the station specs trapping the
            probability mass, instead of scipy's bare ``RuntimeError``.
        """
        if self._lu is None:
            ins = _rt.ACTIVE
            if ins is None:
                self._lu = self._factorize()
            else:
                with ins.span("factorize", level=self.k, dim=self.dim,
                              nnz=int(self.P.nnz)) as span:
                    self._lu = self._factorize()
                ins.count("repro_factorizations_total")
                if span is not None and span.wall is not None:
                    ins.observe("repro_factorization_seconds", span.wall)
        return self._lu

    def _factorize(self) -> spla.SuperLU:
        A = sp.identity(self.dim, format="csc") - self.P.tocsc()
        try:
            return spla.splu(A)
        except RuntimeError as exc:
            if "singular" not in str(exc).lower():
                raise
            raise self._singular_error(A, exc) from exc

    def _singular_error(self, A: sp.csc_matrix, exc: Exception) -> SingularLevelError:
        """Build a :class:`SingularLevelError` naming the offending stations."""
        automata = self.space.automata
        # Rows of (I − P_k) that vanished identify absorbing states; the
        # stations holding customers there are the specs to look at.
        zero_rows = np.flatnonzero(np.asarray(np.abs(A).sum(axis=1)).ravel() == 0.0)
        offenders = sorted(
            {
                automata[c].station.name
                for i in zero_rows
                for c, local in enumerate(self.space.states[i])
                if automata[c].count(local) > 0
            }
        )
        if not offenders:
            offenders = [a.station.name for a in automata]
        return SingularLevelError(
            f"sparse LU of (I − P_{self.k}) failed at level {self.k} "
            f"({self.dim} states): {exc}; suspect station spec(s): "
            + ", ".join(repr(n) for n in offenders),
            level=self.k,
            dim=self.dim,
            stations=offenders,
        )

    @property
    def tau(self) -> np.ndarray:
        """``τ'_k = (I − P_k)⁻¹ M_k⁻¹ ε``: mean time to the next departure."""
        if self._tau is None:
            self._tau = self.lu.solve(1.0 / self.rates)
            ins = _rt.ACTIVE
            if ins is not None:
                ins.count("repro_sparse_solves_total", kind="tau")
        return self._tau

    # ------------------------------------------------------------------
    def apply_Y(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k`` with ``Y_k = (I − P_k)⁻¹ Q_k`` (state after a departure)."""
        ins = _rt.ACTIVE
        if ins is not None:
            ins.count("repro_sparse_solves_total", kind="apply_Y")
        return left_solve(self.lu, np.asarray(x, dtype=float)) @ self.Q

    def apply_YR(self, x: np.ndarray) -> np.ndarray:
        """``x ↦ x Y_k R_k``: departure immediately followed by a refill."""
        return self.apply_Y(x) @ self.R

    def mean_epoch_time(self, x: np.ndarray) -> float:
        """Mean time to the next departure from state mix ``x``: ``x τ'_k``."""
        return float(np.asarray(x, dtype=float) @ self.tau)

    def dense_Y(self) -> np.ndarray:
        """Dense ``Y_k`` (tests/ablations only — cubic memory in ``dim``)."""
        eye = np.eye(self.dim)
        inv = np.column_stack([self.lu.solve(eye[:, j]) for j in range(self.dim)])
        return inv @ self.Q.toarray()

    def dense_V(self) -> np.ndarray:
        """Dense ``V_k = (I − P_k)⁻¹ M_k⁻¹`` (tests/ablations only)."""
        eye = np.eye(self.dim)
        inv = np.column_stack([self.lu.solve(eye[:, j]) for j in range(self.dim)])
        return inv @ np.diag(1.0 / self.rates)


def build_level(
    automata: Sequence[StationAutomaton],
    routing: np.ndarray,
    exit_vec: np.ndarray,
    entry_vec: np.ndarray,
    space_k: LevelSpace,
    space_km1: LevelSpace,
) -> LevelOperators:
    """Assemble the operators for level ``k = space_k.k``.

    Implements the construction rules of §5.4: only one customer moves per
    event; a completion at station ``c`` either routes into station ``c'``
    (probability ``routing[c, c']``, applying the receiving automaton's
    arrival split) and stays in Ξ_k, or exits the network (probability
    ``exit_vec[c]``) and lands in Ξ_{k−1}.
    """
    k = space_k.k
    if k < 1:
        raise ValueError(f"levels start at k=1, got {k}")
    dim = space_k.dim
    dim_dn = space_km1.dim
    n_stations = len(automata)

    rates = np.zeros(dim)
    P_rows: list[int] = []
    P_cols: list[int] = []
    P_vals: list[float] = []
    Q_rows: list[int] = []
    Q_cols: list[int] = []
    Q_vals: list[float] = []

    for i, state in enumerate(space_k.states):
        events: list[tuple[int, Internal | Completion]] = []
        total = 0.0
        for c in range(n_stations):
            for ev in automata[c].events(state[c]):
                events.append((c, ev))
                total += ev.rate
        if total <= 0.0:  # pragma: no cover - impossible for k >= 1
            raise RuntimeError(f"state {state!r} at level {k} has no events")
        rates[i] = total
        for c, ev in events:
            w = ev.rate / total
            if isinstance(ev, Internal):
                tgt = state[:c] + (ev.target,) + state[c + 1 :]
                P_rows.append(i)
                P_cols.append(space_k.index[tgt])
                P_vals.append(w)
                continue
            # Completion at station c: enumerate post-departure local states.
            for pr, local_after in ev.outcomes:
                base = state[:c] + (local_after,) + state[c + 1 :]
                # Route to another station (or back into c).
                for c2 in range(n_stations):
                    pmove = routing[c, c2]
                    if pmove <= 0:
                        continue
                    for pa, local_in in automata[c2].arrivals(base[c2]):
                        tgt = base[:c2] + (local_in,) + base[c2 + 1 :]
                        P_rows.append(i)
                        P_cols.append(space_k.index[tgt])
                        P_vals.append(w * pr * pmove * pa)
                # Leave the network.
                if exit_vec[c] > 0:
                    Q_rows.append(i)
                    Q_cols.append(space_km1.index[base])
                    Q_vals.append(w * pr * exit_vec[c])

    P = sp.csr_matrix((P_vals, (P_rows, P_cols)), shape=(dim, dim))
    Q = sp.csr_matrix((Q_vals, (Q_rows, Q_cols)), shape=(dim, dim_dn))
    R = build_entrance(automata, entry_vec, space_km1, space_k)
    return LevelOperators(k=k, space=space_k, rates=rates, P=P, Q=Q, R=R)


def build_entrance(
    automata: Sequence[StationAutomaton],
    entry_vec: np.ndarray,
    space_from: LevelSpace,
    space_to: LevelSpace,
) -> sp.csr_matrix:
    """The entrance operator ``R_k : Ξ_{k−1} → Ξ_k`` (one task joins)."""
    if space_to.k != space_from.k + 1:
        raise ValueError(
            f"entrance must raise the level by one, got {space_from.k} → {space_to.k}"
        )
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_stations = len(automata)
    for i, state in enumerate(space_from.states):
        for c in range(n_stations):
            pc = entry_vec[c]
            if pc <= 0:
                continue
            for pa, local_in in automata[c].arrivals(state[c]):
                tgt = state[:c] + (local_in,) + state[c + 1 :]
                rows.append(i)
                cols.append(space_to.index[tgt])
                vals.append(pc * pa)
    return sp.csr_matrix((vals, (rows, cols)), shape=(space_from.dim, space_to.dim))
