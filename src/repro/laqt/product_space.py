"""Full (non-reduced) product-space backend.

Paper §5.4 motivates the reduced-product space by counting the full
Kronecker formulation at ``(2K+1)^K`` states: one coordinate per *task*.
This module implements that full formulation for exponential networks, as
an independent backend whose results must match the reduced model exactly
— the ``ablation_reduced_vs_product`` benchmark also measures the state
explosion the reduction avoids.

A full state at level ``k`` is the tuple of the ``k`` (distinguishable)
tasks' station indices.  For exponential service the departure process is
insensitive to queueing order, so a shared station with ``n`` tasks
completes *some* task at rate ``min(n, c)·µ``, chosen uniformly — giving
the same aggregated dynamics as FCFS.  Multi-stage stations are rejected:
the reduction is exactly what makes them tractable.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
from itertools import product

from repro.core.transient import TransientModel
from repro.laqt.operators import LevelOperators
from repro.network.spec import NetworkSpec

__all__ = ["FullProductModel"]


class _FullSpace:
    """All ordered assignments of ``k`` tasks to stations."""

    def __init__(self, n_stations: int, k: int):
        self.k = k
        self.states = tuple(product(range(n_stations), repeat=k)) if k else ((),)
        self.index = {s: i for i, s in enumerate(self.states)}

    @property
    def dim(self) -> int:
        return len(self.states)


class FullProductModel(TransientModel):
    """Transient solver on the full Kronecker space (exponential networks).

    Same public interface as :class:`TransientModel`; exponentially more
    states (``M^k`` per level instead of ``C(M+k−1, k)``).
    """

    def __init__(self, spec: NetworkSpec, K: int):
        for st in spec.stations:
            if st.dist.n_stages != 1:
                raise ValueError(
                    f"station {st.name!r} is non-exponential; the full product "
                    "backend supports exponential networks only"
                )
        if K < 1 or int(K) != K:
            raise ValueError(f"K must be a positive integer, got {K!r}")
        self._spec = spec
        self._K = int(K)
        self._automata = ()  # unused by this backend
        self._spaces = [_FullSpace(spec.n_stations, k) for k in range(self._K + 1)]
        self._levels: dict[int, LevelOperators] = {}
        self._entrance: dict[int, np.ndarray] = {}
        self._mu = np.array([st.dist.rates[0] for st in spec.stations])
        self._cap = np.array(
            [math.inf if st.is_delay else float(st.servers) for st in spec.stations]
        )

    # ------------------------------------------------------------------
    def _station_rate(self, station: int, n: int) -> float:
        return float(min(n, self._cap[station]) * self._mu[station])

    def _build_level(self, k: int) -> LevelOperators:
        spec = self._spec
        M = spec.n_stations
        space_k: _FullSpace = self._spaces[k]
        space_dn: _FullSpace = self._spaces[k - 1]
        dim = space_k.dim

        rates = np.zeros(dim)
        Pr, Pc, Pv = [], [], []
        Qr, Qc, Qv = [], [], []
        for i, state in enumerate(space_k.states):
            counts = np.bincount(state, minlength=M)
            total = sum(self._station_rate(j, counts[j]) for j in range(M) if counts[j])
            rates[i] = total
            for t, j in enumerate(state):
                # Task t finishes at rate (station rate) / (tasks present):
                # uniform pick among the n_j tasks, valid for exponential service.
                r_t = self._station_rate(j, counts[j]) / counts[j]
                w = r_t / total
                for j2 in range(M):
                    pmove = spec.routing[j, j2]
                    if pmove > 0:
                        tgt = state[:t] + (j2,) + state[t + 1 :]
                        Pr.append(i)
                        Pc.append(space_k.index[tgt])
                        Pv.append(w * pmove)
                if spec.exit[j] > 0:
                    tgt = state[:t] + state[t + 1 :]
                    Qr.append(i)
                    Qc.append(space_dn.index[tgt])
                    Qv.append(w * spec.exit[j])
        P = sp.csr_matrix((Pv, (Pr, Pc)), shape=(dim, dim))
        Q = sp.csr_matrix((Qv, (Qr, Qc)), shape=(dim, space_dn.dim))

        Rr, Rc, Rv = [], [], []
        for i, state in enumerate(space_dn.states):
            for j in range(M):
                pj = spec.entry[j]
                if pj > 0:
                    Rr.append(i)
                    Rc.append(space_k.index[state + (j,)])
                    Rv.append(pj)
        R = sp.csr_matrix((Rv, (Rr, Rc)), shape=(space_dn.dim, dim))
        return LevelOperators(k=k, space=space_k, rates=rates, P=P, Q=Q, R=R)

    # ------------------------------------------------------------------
    def aggregate_to_reduced(self, x: np.ndarray, k: int) -> dict[tuple, float]:
        """Project a full-space vector onto occupancy counts (for tests)."""
        space: _FullSpace = self._spaces[k]
        out: dict[tuple, float] = {}
        for i, state in enumerate(space.states):
            key = tuple(np.bincount(state, minlength=self._spec.n_stations))
            out[key] = out.get(key, 0.0) + float(x[i])
        return out
