"""Full (non-reduced) product-space backend.

Paper §5.4 motivates the reduced-product space by counting the full
Kronecker formulation at ``(2K+1)^K`` states: one coordinate per *task*.
This module implements that full formulation for exponential networks, as
an independent backend whose results must match the reduced model exactly
— the ``ablation_reduced_vs_product`` benchmark also measures the state
explosion the reduction avoids.

A full state at level ``k`` is the tuple of the ``k`` (distinguishable)
tasks' station indices.  For exponential service the departure process is
insensitive to queueing order, so a shared station with ``n`` tasks
completes *some* task at rate ``min(n, c)·µ``, chosen uniformly — giving
the same aggregated dynamics as FCFS.  Multi-stage stations are rejected:
the reduction is exactly what makes them tractable.

The enumeration order is lexicographic in the task tuple, so a state's
index is its base-``M`` reading, ``rank = Σ_t s_t · M^{k−1−t}`` — the
assembly below exploits this to compute every transition target
arithmetically over whole levels at once, mirroring the vectorized
reduced-space assembly in :mod:`repro.laqt.operators`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

import numpy as np
from itertools import product

from repro.core.transient import TransientModel
from repro.laqt.operators import LevelOperators, _coo_to_csr
from repro.network.spec import NetworkSpec
from repro.obs.instrument import Instrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.budget import Budget
    from repro.resilience.guards import GuardConfig

__all__ = ["FullProductModel"]


class _FullSpace:
    """All ordered assignments of ``k`` tasks to stations.

    Index arithmetic replaces enumeration: state ``i`` *is* the base-``M``
    expansion of ``i`` over ``k`` digits.  The tuple views ``states`` /
    ``index`` are materialized lazily for diagnostics only.
    """

    def __init__(self, n_stations: int, k: int):
        self.k = k
        self.n_stations = n_stations
        self._states: tuple[tuple, ...] | None = None
        self._index: dict[tuple, int] | None = None

    @property
    def dim(self) -> int:
        return self.n_stations**self.k

    @property
    def states(self) -> tuple[tuple, ...]:
        if self._states is None:
            self._states = (
                tuple(product(range(self.n_stations), repeat=self.k))
                if self.k
                else ((),)
            )
        return self._states

    @property
    def index(self) -> dict[tuple, int]:
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        return self._index


class FullProductModel(TransientModel):
    """Transient solver on the full Kronecker space (exponential networks).

    Same public interface as :class:`TransientModel` — including the
    ``budget=`` and ``instrument=`` keywords — with exponentially more
    states (``M^k`` per level instead of ``C(M+k−1, k)``).  The solve
    guards (``guards=``) are not supported: they diagnose failures through
    the reduced-space automata, which this backend does not build.
    """

    def __init__(
        self,
        spec: NetworkSpec,
        K: int,
        *,
        guards: "GuardConfig | None" = None,
        budget: "Budget | None" = None,
        instrument: Instrumentation | Callable[[int, int, np.ndarray], None] | None = None,
        propagation: str = "propagator",
    ):
        for st in spec.stations:
            if st.dist.n_stages != 1:
                raise ValueError(
                    f"station {st.name!r} is non-exponential; the full product "
                    "backend supports exponential networks only"
                )
        if K < 1 or int(K) != K:
            raise ValueError(f"K must be a positive integer, got {K!r}")
        if guards is not None:
            raise ValueError(
                "FullProductModel does not support guards=; solve guards "
                "diagnose through the reduced-space automata (use "
                "TransientModel for a guarded solve)"
            )
        if budget is not None:
            from repro.resilience.budget import enforce_budget

            enforce_budget(
                spec,
                int(K),
                budget,
                dims=[spec.n_stations**k for k in range(int(K) + 1)],
            )
        if propagation not in self._PROPAGATION_MODES:
            raise ValueError(
                f"propagation must be one of {sorted(self._PROPAGATION_MODES)}, "
                f"got {propagation!r}"
            )
        self._spec = spec
        self._K = int(K)
        self._guards = None
        self._propagation = propagation
        self.instrument = instrument
        self._automata = ()  # unused by this backend
        self._spaces = [_FullSpace(spec.n_stations, k) for k in range(self._K + 1)]
        self._levels: dict[int, LevelOperators] = {}
        self._entrance: dict[int, np.ndarray] = {}
        self._mu = np.array([st.dist.rates[0] for st in spec.stations])
        self._cap = np.array(
            [math.inf if st.is_delay else float(st.servers) for st in spec.stations]
        )

    # ------------------------------------------------------------------
    def _station_rate(self, station: int, n: int) -> float:
        return float(min(n, self._cap[station]) * self._mu[station])

    def _build_level(self, k: int) -> LevelOperators:
        spec = self._spec
        M = spec.n_stations
        space_k: _FullSpace = self._spaces[k]
        space_dn: _FullSpace = self._spaces[k - 1]
        dim = space_k.dim

        # digits[i, t] = station of task t in state i (base-M expansion).
        powers = M ** np.arange(k - 1, -1, -1, dtype=np.int64)
        idx = np.arange(dim, dtype=np.int64)
        digits = (idx[:, None] // powers[None, :]) % M
        counts = np.zeros((dim, M), dtype=np.int64)
        for j in range(M):
            counts[:, j] = (digits == j).sum(axis=1)
        # rate_table[j, n] = min(n, c_j)·µ_j — the aggregate rate of station
        # j holding n tasks.
        loads = np.arange(k + 1, dtype=float)
        rate_table = np.minimum(loads[None, :], self._cap[:, None]) * self._mu[:, None]
        rates = np.zeros(dim)
        for j in range(M):
            rates += rate_table[j][counts[:, j]]

        Pr: list[np.ndarray] = []
        Pc: list[np.ndarray] = []
        Pv: list[np.ndarray] = []
        Qr: list[np.ndarray] = []
        Qc: list[np.ndarray] = []
        Qv: list[np.ndarray] = []
        for t in range(k):
            j = digits[:, t]
            n_j = counts[idx, j]
            # Task t finishes at rate (station rate) / (tasks present):
            # uniform pick among the n_j tasks, valid for exponential service.
            w = (rate_table[j, n_j] / n_j) / rates
            for j2 in range(M):
                pmove = spec.routing[j, j2]
                live = np.flatnonzero(pmove > 0.0)
                if live.size:
                    Pr.append(idx[live])
                    Pc.append(idx[live] + (j2 - j[live]) * powers[t])
                    Pv.append(w[live] * pmove[live])
            pexit = spec.exit[j]
            live = np.flatnonzero(pexit > 0.0)
            if live.size:
                # Deleting digit t splices the prefix and suffix readings.
                hi = idx[live] // (powers[t] * M)
                lo = idx[live] % powers[t]
                Qr.append(idx[live])
                Qc.append(hi * powers[t] + lo)
                Qv.append(w[live] * pexit[live])
        P = _coo_to_csr(Pr, Pc, Pv, (dim, dim))
        Q = _coo_to_csr(Qr, Qc, Qv, (dim, space_dn.dim))

        # R: append the new task's digit — rank shifts by one base-M place.
        Rr: list[np.ndarray] = []
        Rc: list[np.ndarray] = []
        Rv: list[np.ndarray] = []
        idx_dn = np.arange(space_dn.dim, dtype=np.int64)
        for j in range(M):
            pj = float(spec.entry[j])
            if pj > 0.0:
                Rr.append(idx_dn)
                Rc.append(idx_dn * M + j)
                Rv.append(np.full(space_dn.dim, pj))
        R = _coo_to_csr(Rr, Rc, Rv, (space_dn.dim, dim))
        return LevelOperators(k=k, space=space_k, rates=rates, P=P, Q=Q, R=R)

    # ------------------------------------------------------------------
    def aggregate_to_reduced(self, x: np.ndarray, k: int) -> dict[tuple, float]:
        """Project a full-space vector onto occupancy counts (for tests)."""
        space: _FullSpace = self._spaces[k]
        out: dict[tuple, float] = {}
        for i, state in enumerate(space.states):
            key = tuple(np.bincount(state, minlength=self._spec.n_stations))
            out[key] = out.get(key, 0.0) + float(x[i])
        return out
