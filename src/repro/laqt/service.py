"""Single-customer LAQT representation of a network (paper §3.1, §5.4).

With exactly one task in the system, the network *is* a matrix-exponential
distribution: stage-expanding every station and wiring the stage-level
routing yields the tuple ``⟨p, P, M, q'⟩`` from which

* ``B = M (I − P)`` — the service-rate matrix,
* ``V = B⁻¹`` — the service-time matrix,
* ``τ = V ε`` — mean time to leave, per starting stage,
* ``pV`` — the paper's *time-component vector* (total expected time a task
  spends in each stage; aggregated per station it reproduces the
  ``[CX, (1−C)X, BY, Y]`` decomposition of §5.4).

This module performs that stage expansion once; the same expansion data
(stage ownership, entry stages, rates) is reused by the multi-customer
operator builder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.distributions.base import MatrixExponential
from repro.network.spec import NetworkSpec

__all__ = ["ServiceNetwork"]


@dataclass(frozen=True)
class _StageMap:
    """Bookkeeping of the station → stage expansion."""

    #: station index of each stage
    owner: np.ndarray
    #: slice of stages belonging to each station
    spans: tuple[slice, ...]


class ServiceNetwork:
    """Stage-expanded single-customer view of a :class:`NetworkSpec`.

    Parameters
    ----------
    spec:
        The network to expand.

    Attributes
    ----------
    p, P, M, q:
        The LAQT tuple: entrance vector, stage routing matrix, stage rate
        vector and exit vector, all at stage level.
    """

    def __init__(self, spec: NetworkSpec):
        self._spec = spec
        owner = []
        spans = []
        at = 0
        for ci, st in enumerate(spec.stations):
            m = st.dist.n_stages
            owner.extend([ci] * m)
            spans.append(slice(at, at + m))
            at += m
        n = at
        self._stages = _StageMap(np.asarray(owner), tuple(spans))

        rates = np.concatenate([st.dist.rates for st in spec.stations])
        P = np.zeros((n, n))
        p = np.zeros(n)
        q = np.zeros(n)
        for ci, st in enumerate(spec.stations):
            sp = spans[ci]
            ph = st.dist
            P[sp, sp] = ph.routing
            p[sp] = spec.entry[ci] * ph.entry
            # On PH exit, route at network level into the next station's
            # entry stages, or leave the network.
            for cj, stj in enumerate(spec.stations):
                prob = spec.routing[ci, cj]
                if prob > 0:
                    P[sp, spans[cj]] += prob * np.outer(ph.exit_probs, stj.dist.entry)
            q[sp] = spec.exit[ci] * ph.exit_probs
        self.p = p
        self.P = P
        self.M = rates
        self.q = q
        self.B = np.diag(rates) @ (np.eye(n) - P)
        self.V = sla.inv(self.B)

    # ------------------------------------------------------------------
    @property
    def spec(self) -> NetworkSpec:
        """The originating network specification."""
        return self._spec

    @property
    def n_stages(self) -> int:
        """Total number of stages after expansion."""
        return self.M.shape[0]

    def stage_owner(self, stage: int) -> int:
        """Station index owning the given stage."""
        return int(self._stages.owner[stage])

    def station_stages(self, station: int) -> slice:
        """Slice of stage indices belonging to the given station."""
        return self._stages.spans[station]

    # ------------------------------------------------------------------
    @property
    def tau(self) -> np.ndarray:
        """``τ = V ε``: mean time to leave the network from each stage."""
        return self.V @ np.ones(self.n_stages)

    @property
    def mean_time(self) -> float:
        """Mean contention-free task time ``Ψ[V] = p τ``."""
        return float(self.p @ self.tau)

    def psi(self, X) -> float:
        """The LAQT functional ``Ψ[X] = p X ε`` at stage level."""
        return float(self.p @ np.asarray(X, dtype=float) @ np.ones(self.n_stages))

    def moment(self, k: int) -> float:
        """Raw moment ``E[T^k]`` of the contention-free task time."""
        return self.as_distribution().moment(k)

    def time_components(self) -> np.ndarray:
        """Per-station expected time per task (the paper's ``pV`` aggregated).

        For the central cluster this is ``[CX, (1−C)X, BY, Y]``.
        """
        pV = self.p @ self.V
        out = np.array(
            [pV[self._stages.spans[ci]].sum() for ci in range(self._spec.n_stations)]
        )
        return out

    def as_distribution(self) -> MatrixExponential:
        """The task sojourn time as a ``<p, B>`` matrix-exponential law."""
        return MatrixExponential(self.p, self.B)

    def as_ph(self) -> "PHDistribution":
        """The task sojourn time in PH stage form.

        Because the expansion is Markovian, the contention-free task time is
        itself phase-type: entry ``p``, stage rates ``M``, routing ``P``.
        Useful for feeding a whole task into PH-closure operations (e.g. the
        fork/join order-statistics baseline).
        """
        from repro.distributions.ph import PHDistribution

        return PHDistribution(self.p, self.M, self.P)
