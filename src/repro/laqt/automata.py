"""Per-station local-state automata.

The reduced-product construction (paper §5.4) tracks, for each station,
only as much local detail as the Markov dynamics require:

* exponential station → its customer count,
* dedicated PH bank (delay server) → occupancy of each stage,
* shared single-server PH station → (waiting count, stage of the customer
  in service).

Each automaton enumerates its local states for a given local customer
count and describes its outgoing transitions.  The level-operator builder
in :mod:`repro.laqt.operators` composes these automata with the network
routing to assemble ``M_k, P_k, Q_k, R_k`` — it never needs to know what
kind of station it is looking at.

Local states are plain tuples of ints so global states stay hashable.

Exactness note (shared PH stations)
-----------------------------------
For a single-server FCFS station, customers in queue have not yet begun
service, so their eventual PH stage is undetermined; the local state
``(w, s)`` — ``w`` waiting plus one in service at stage ``s`` (``(0, 0)``
when idle) — is therefore a *lossless* description, and the construction is
exact (it is the classic M/PH/1 phase process, embedded in the network).
For a dedicated bank every customer is in service, so the stage-occupancy
vector is exact by the usual CTMC lumping of iid customers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.network.spec import Station

__all__ = [
    "LocalState",
    "Internal",
    "Completion",
    "AutomatonTables",
    "StationAutomaton",
    "ExponentialAutomaton",
    "DelayPHAutomaton",
    "QueuedPHAutomaton",
    "automaton_for",
]

LocalState = tuple  # alias for readability


@dataclass(frozen=True)
class Internal:
    """A transition that keeps the customer inside the station."""

    rate: float
    target: LocalState


@dataclass(frozen=True)
class Completion:
    """A service completion: one customer is ready to leave the station.

    ``outcomes`` lists the station's possible local states *after* the
    customer has left (e.g. the next queued customer entering a random
    stage), with probabilities summing to one.
    """

    rate: float
    outcomes: tuple[tuple[float, LocalState], ...]


@dataclass(frozen=True)
class AutomatonTables:
    """Flattened, numpy-ready event/arrival tables for one automaton.

    Local states of loads ``0..max_count`` are assigned consecutive
    *global-local ids* (gids) in ``(load, enumeration-position)`` order;
    every transition the automaton can make is recorded as flat arrays
    indexed CSR-style per gid.  The vectorized level assembler
    (:func:`repro.laqt.operators.build_level`) consumes these tables
    instead of calling :meth:`StationAutomaton.events` per global state —
    the automaton is asked about each *local* state exactly once, however
    many global states share it.

    Target local states are stored as *positions* within their load class
    (``tpos``), which is what the mixed-radix ranking of
    :class:`repro.laqt.states.LevelSpace` needs to turn a local move into
    a global column index arithmetically.
    """

    max_count: int
    #: local-state count per load ``n`` (``L[n] = len(local_states(n))``)
    L: np.ndarray
    #: gid of the first local state of each load (``gid = offset[n] + pos``)
    offset: np.ndarray
    #: load ``n`` of each gid
    count_of: np.ndarray
    #: position within the load class of each gid
    pos_of: np.ndarray
    #: total outgoing event rate per gid (diagonal of the local ``M``)
    total_rate: np.ndarray
    #: internal moves per gid: CSR pointer, rate, target position (same load)
    int_ptr: np.ndarray
    int_rate: np.ndarray
    int_tpos: np.ndarray
    #: completion (event × outcome) slots per gid: rate, outcome probability,
    #: post-departure position (load ``n − 1``)
    comp_ptr: np.ndarray
    comp_rate: np.ndarray
    comp_pr: np.ndarray
    comp_tpos: np.ndarray
    #: arrival slots per gid (loads ``< max_count``): probability, target
    #: position (load ``n + 1``)
    arr_ptr: np.ndarray
    arr_p: np.ndarray
    arr_tpos: np.ndarray
    #: gid → local state tuple (diagnostics and lazy state reconstruction)
    locals_flat: tuple


def _build_tables(auto: "StationAutomaton", max_count: int) -> AutomatonTables:
    locals_by_n = [list(auto.local_states(n)) for n in range(max_count + 1)]
    pos = [{s: i for i, s in enumerate(ls)} for ls in locals_by_n]
    L = np.array([len(ls) for ls in locals_by_n], dtype=np.int64)
    offset = np.zeros(max_count + 2, dtype=np.int64)
    np.cumsum(L, out=offset[1:])
    n_gids = int(offset[-1])
    count_of = np.repeat(np.arange(max_count + 1, dtype=np.int64), L)
    pos_of = np.concatenate(
        [np.arange(n, dtype=np.int64) for n in L]
    ) if n_gids else np.zeros(0, dtype=np.int64)
    total = np.zeros(n_gids)

    int_cnt = np.zeros(n_gids + 1, dtype=np.int64)
    int_rate: list[float] = []
    int_tpos: list[int] = []
    comp_cnt = np.zeros(n_gids + 1, dtype=np.int64)
    comp_rate: list[float] = []
    comp_pr: list[float] = []
    comp_tpos: list[int] = []
    arr_cnt = np.zeros(n_gids + 1, dtype=np.int64)
    arr_p: list[float] = []
    arr_tpos: list[int] = []
    locals_flat: list[LocalState] = []

    for n, states in enumerate(locals_by_n):
        for state in states:
            g = int(offset[n]) + pos[n][state]
            locals_flat.append(state)
            for ev in auto.events(state):
                total[g] += ev.rate
                if isinstance(ev, Internal):
                    int_cnt[g + 1] += 1
                    int_rate.append(ev.rate)
                    int_tpos.append(pos[n][ev.target])
                else:
                    for pr, after in ev.outcomes:
                        comp_cnt[g + 1] += 1
                        comp_rate.append(ev.rate)
                        comp_pr.append(pr)
                        comp_tpos.append(pos[n - 1][after])
            if n < max_count:
                for pa, target in auto.arrivals(state):
                    arr_cnt[g + 1] += 1
                    arr_p.append(pa)
                    arr_tpos.append(pos[n + 1][target])

    return AutomatonTables(
        max_count=max_count,
        L=L,
        offset=offset,
        count_of=count_of,
        pos_of=pos_of,
        total_rate=total,
        int_ptr=np.cumsum(int_cnt),
        int_rate=np.asarray(int_rate, dtype=float),
        int_tpos=np.asarray(int_tpos, dtype=np.int64),
        comp_ptr=np.cumsum(comp_cnt),
        comp_rate=np.asarray(comp_rate, dtype=float),
        comp_pr=np.asarray(comp_pr, dtype=float),
        comp_tpos=np.asarray(comp_tpos, dtype=np.int64),
        arr_ptr=np.cumsum(arr_cnt),
        arr_p=np.asarray(arr_p, dtype=float),
        arr_tpos=np.asarray(arr_tpos, dtype=np.int64),
        locals_flat=tuple(locals_flat),
    )


class StationAutomaton:
    """Interface shared by all station automata."""

    def __init__(self, station: Station):
        self.station = station

    def local_states(self, n: int) -> list[LocalState]:
        """All local states holding exactly ``n`` customers."""
        raise NotImplementedError

    def count(self, state: LocalState) -> int:
        """Number of customers in the given local state."""
        raise NotImplementedError

    def events(self, state: LocalState) -> Iterable[Internal | Completion]:
        """Outgoing transitions of the local CTMC."""
        raise NotImplementedError

    def arrivals(self, state: LocalState) -> Sequence[tuple[float, LocalState]]:
        """Local states after one customer arrives, with probabilities."""
        raise NotImplementedError

    def tables(self, max_count: int) -> AutomatonTables:
        """Precomputed event/arrival tables for loads ``0..max_count``.

        Built once from the per-local-state API above and cached on the
        automaton; a cached table covering a larger ``max_count`` is
        reused as-is (gids of the smaller range are a stable prefix).
        Works for any subclass — only the standard interface is used.
        """
        cached: AutomatonTables | None = getattr(self, "_tables", None)
        if cached is not None and cached.max_count >= max_count:
            return cached
        built = _build_tables(self, int(max_count))
        self._tables = built
        return built


class ExponentialAutomaton(StationAutomaton):
    """Exponential station with ``c`` servers (``c = ∞`` for a delay bank).

    The local state is just the customer count; the completion rate with
    ``n`` present is ``min(n, c)·µ`` (``n·µ`` for the delay bank), which is
    the load-dependent-server reduction of §5.4.
    """

    def __init__(self, station: Station):
        if station.dist.n_stages != 1:
            raise ValueError(
                f"station {station.name!r} is not exponential "
                f"({station.dist.n_stages} stages)"
            )
        super().__init__(station)
        self._mu = float(station.dist.rates[0])

    def local_states(self, n: int) -> list[LocalState]:
        return [(n,)]

    def count(self, state: LocalState) -> int:
        return state[0]

    def _rate(self, n: int) -> float:
        c = self.station.servers
        busy = n if c == np.inf else min(n, int(c))
        return busy * self._mu

    def events(self, state: LocalState):
        n = state[0]
        if n == 0:
            return []
        return [Completion(self._rate(n), (((1.0, (n - 1,)),)))]

    def arrivals(self, state: LocalState):
        return [(1.0, (state[0] + 1,))]


class DelayPHAutomaton(StationAutomaton):
    """Dedicated bank with PH service: every customer is in service.

    Local state: occupancy of each PH stage, ``(α₁, …, α_m)``.  A stage
    ``s`` fires at aggregate rate ``α_s µ_s``, routing internally per the
    PH routing matrix or completing per the PH exit probabilities — the
    direct generalization of the paper's Erlangian/Hyperexponential stage
    expansion for the CPU/local-disk banks.
    """

    def __init__(self, station: Station):
        if not station.is_delay:
            raise ValueError(f"station {station.name!r} is not a delay bank")
        super().__init__(station)
        ph = station.dist
        self._m = ph.n_stages
        self._rates = ph.rates
        self._routing = ph.routing
        self._exit = ph.exit_probs
        self._entry = ph.entry

    def local_states(self, n: int) -> list[LocalState]:
        return [tuple(c) for c in _compositions(n, self._m)]

    def count(self, state: LocalState) -> int:
        return sum(state)

    def events(self, state: LocalState):
        out: list[Internal | Completion] = []
        for s, alpha in enumerate(state):
            if alpha == 0:
                continue
            base = alpha * self._rates[s]
            for s2 in range(self._m):
                pr = self._routing[s, s2]
                if pr > 0:
                    tgt = list(state)
                    tgt[s] -= 1
                    tgt[s2] += 1
                    out.append(Internal(base * pr, tuple(tgt)))
            if self._exit[s] > 0:
                tgt = list(state)
                tgt[s] -= 1
                out.append(Completion(base * self._exit[s], ((1.0, tuple(tgt)),)))
        return out

    def arrivals(self, state: LocalState):
        out = []
        for s in range(self._m):
            if self._entry[s] > 0:
                tgt = list(state)
                tgt[s] += 1
                out.append((float(self._entry[s]), tuple(tgt)))
        return out


class QueuedPHAutomaton(StationAutomaton):
    """Single-server FCFS station with PH service.

    Local state ``(w, s)``: ``w`` customers waiting and one in service at
    stage ``s ∈ {1..m}``; the idle state is ``(0, 0)``.  On completion the
    head-of-line customer (if any) enters service in stage ``s'`` with
    probability ``entry[s']``.
    """

    def __init__(self, station: Station):
        if station.is_delay or station.servers != 1:
            raise ValueError(
                f"station {station.name!r} must have exactly one server for "
                "the queued PH automaton"
            )
        super().__init__(station)
        ph = station.dist
        self._m = ph.n_stages
        self._rates = ph.rates
        self._routing = ph.routing
        self._exit = ph.exit_probs
        self._entry = ph.entry

    def local_states(self, n: int) -> list[LocalState]:
        if n == 0:
            return [(0, 0)]
        return [(n - 1, s) for s in range(1, self._m + 1)]

    def count(self, state: LocalState) -> int:
        w, s = state
        return w + (1 if s > 0 else 0)

    def events(self, state: LocalState):
        w, s = state
        if s == 0:
            return []
        rate = self._rates[s - 1]
        out: list[Internal | Completion] = []
        for s2 in range(self._m):
            pr = self._routing[s - 1, s2]
            if pr > 0:
                out.append(Internal(rate * pr, (w, s2 + 1)))
        ex = self._exit[s - 1]
        if ex > 0:
            if w == 0:
                outcomes = (((1.0, (0, 0)),))
            else:
                outcomes = tuple(
                    (float(self._entry[s2]), (w - 1, s2 + 1))
                    for s2 in range(self._m)
                    if self._entry[s2] > 0
                )
            out.append(Completion(rate * ex, outcomes))
        return out

    def arrivals(self, state: LocalState):
        w, s = state
        if s == 0:
            return [
                (float(self._entry[s2]), (0, s2 + 1))
                for s2 in range(self._m)
                if self._entry[s2] > 0
            ]
        return [(1.0, (w + 1, s))]


def automaton_for(station: Station) -> StationAutomaton:
    """Pick the exact automaton for a station (see module docstring)."""
    if station.dist.n_stages == 1:
        return ExponentialAutomaton(station)
    if station.is_delay:
        return DelayPHAutomaton(station)
    return QueuedPHAutomaton(station)


def _compositions(n: int, parts: int):
    """Yield all tuples of ``parts`` nonnegative ints summing to ``n``."""
    if parts == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in _compositions(n - first, parts - 1):
            yield (first,) + rest
