"""Per-station local-state automata.

The reduced-product construction (paper §5.4) tracks, for each station,
only as much local detail as the Markov dynamics require:

* exponential station → its customer count,
* dedicated PH bank (delay server) → occupancy of each stage,
* shared single-server PH station → (waiting count, stage of the customer
  in service).

Each automaton enumerates its local states for a given local customer
count and describes its outgoing transitions.  The level-operator builder
in :mod:`repro.laqt.operators` composes these automata with the network
routing to assemble ``M_k, P_k, Q_k, R_k`` — it never needs to know what
kind of station it is looking at.

Local states are plain tuples of ints so global states stay hashable.

Exactness note (shared PH stations)
-----------------------------------
For a single-server FCFS station, customers in queue have not yet begun
service, so their eventual PH stage is undetermined; the local state
``(w, s)`` — ``w`` waiting plus one in service at stage ``s`` (``(0, 0)``
when idle) — is therefore a *lossless* description, and the construction is
exact (it is the classic M/PH/1 phase process, embedded in the network).
For a dedicated bank every customer is in service, so the stage-occupancy
vector is exact by the usual CTMC lumping of iid customers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.network.spec import Station

__all__ = [
    "LocalState",
    "Internal",
    "Completion",
    "StationAutomaton",
    "ExponentialAutomaton",
    "DelayPHAutomaton",
    "QueuedPHAutomaton",
    "automaton_for",
]

LocalState = tuple  # alias for readability


@dataclass(frozen=True)
class Internal:
    """A transition that keeps the customer inside the station."""

    rate: float
    target: LocalState


@dataclass(frozen=True)
class Completion:
    """A service completion: one customer is ready to leave the station.

    ``outcomes`` lists the station's possible local states *after* the
    customer has left (e.g. the next queued customer entering a random
    stage), with probabilities summing to one.
    """

    rate: float
    outcomes: tuple[tuple[float, LocalState], ...]


class StationAutomaton:
    """Interface shared by all station automata."""

    def __init__(self, station: Station):
        self.station = station

    def local_states(self, n: int) -> list[LocalState]:
        """All local states holding exactly ``n`` customers."""
        raise NotImplementedError

    def count(self, state: LocalState) -> int:
        """Number of customers in the given local state."""
        raise NotImplementedError

    def events(self, state: LocalState) -> Iterable[Internal | Completion]:
        """Outgoing transitions of the local CTMC."""
        raise NotImplementedError

    def arrivals(self, state: LocalState) -> Sequence[tuple[float, LocalState]]:
        """Local states after one customer arrives, with probabilities."""
        raise NotImplementedError


class ExponentialAutomaton(StationAutomaton):
    """Exponential station with ``c`` servers (``c = ∞`` for a delay bank).

    The local state is just the customer count; the completion rate with
    ``n`` present is ``min(n, c)·µ`` (``n·µ`` for the delay bank), which is
    the load-dependent-server reduction of §5.4.
    """

    def __init__(self, station: Station):
        if station.dist.n_stages != 1:
            raise ValueError(
                f"station {station.name!r} is not exponential "
                f"({station.dist.n_stages} stages)"
            )
        super().__init__(station)
        self._mu = float(station.dist.rates[0])

    def local_states(self, n: int) -> list[LocalState]:
        return [(n,)]

    def count(self, state: LocalState) -> int:
        return state[0]

    def _rate(self, n: int) -> float:
        c = self.station.servers
        busy = n if c == np.inf else min(n, int(c))
        return busy * self._mu

    def events(self, state: LocalState):
        n = state[0]
        if n == 0:
            return []
        return [Completion(self._rate(n), (((1.0, (n - 1,)),)))]

    def arrivals(self, state: LocalState):
        return [(1.0, (state[0] + 1,))]


class DelayPHAutomaton(StationAutomaton):
    """Dedicated bank with PH service: every customer is in service.

    Local state: occupancy of each PH stage, ``(α₁, …, α_m)``.  A stage
    ``s`` fires at aggregate rate ``α_s µ_s``, routing internally per the
    PH routing matrix or completing per the PH exit probabilities — the
    direct generalization of the paper's Erlangian/Hyperexponential stage
    expansion for the CPU/local-disk banks.
    """

    def __init__(self, station: Station):
        if not station.is_delay:
            raise ValueError(f"station {station.name!r} is not a delay bank")
        super().__init__(station)
        ph = station.dist
        self._m = ph.n_stages
        self._rates = ph.rates
        self._routing = ph.routing
        self._exit = ph.exit_probs
        self._entry = ph.entry

    def local_states(self, n: int) -> list[LocalState]:
        return [tuple(c) for c in _compositions(n, self._m)]

    def count(self, state: LocalState) -> int:
        return sum(state)

    def events(self, state: LocalState):
        out: list[Internal | Completion] = []
        for s, alpha in enumerate(state):
            if alpha == 0:
                continue
            base = alpha * self._rates[s]
            for s2 in range(self._m):
                pr = self._routing[s, s2]
                if pr > 0:
                    tgt = list(state)
                    tgt[s] -= 1
                    tgt[s2] += 1
                    out.append(Internal(base * pr, tuple(tgt)))
            if self._exit[s] > 0:
                tgt = list(state)
                tgt[s] -= 1
                out.append(Completion(base * self._exit[s], ((1.0, tuple(tgt)),)))
        return out

    def arrivals(self, state: LocalState):
        out = []
        for s in range(self._m):
            if self._entry[s] > 0:
                tgt = list(state)
                tgt[s] += 1
                out.append((float(self._entry[s]), tuple(tgt)))
        return out


class QueuedPHAutomaton(StationAutomaton):
    """Single-server FCFS station with PH service.

    Local state ``(w, s)``: ``w`` customers waiting and one in service at
    stage ``s ∈ {1..m}``; the idle state is ``(0, 0)``.  On completion the
    head-of-line customer (if any) enters service in stage ``s'`` with
    probability ``entry[s']``.
    """

    def __init__(self, station: Station):
        if station.is_delay or station.servers != 1:
            raise ValueError(
                f"station {station.name!r} must have exactly one server for "
                "the queued PH automaton"
            )
        super().__init__(station)
        ph = station.dist
        self._m = ph.n_stages
        self._rates = ph.rates
        self._routing = ph.routing
        self._exit = ph.exit_probs
        self._entry = ph.entry

    def local_states(self, n: int) -> list[LocalState]:
        if n == 0:
            return [(0, 0)]
        return [(n - 1, s) for s in range(1, self._m + 1)]

    def count(self, state: LocalState) -> int:
        w, s = state
        return w + (1 if s > 0 else 0)

    def events(self, state: LocalState):
        w, s = state
        if s == 0:
            return []
        rate = self._rates[s - 1]
        out: list[Internal | Completion] = []
        for s2 in range(self._m):
            pr = self._routing[s - 1, s2]
            if pr > 0:
                out.append(Internal(rate * pr, (w, s2 + 1)))
        ex = self._exit[s - 1]
        if ex > 0:
            if w == 0:
                outcomes = (((1.0, (0, 0)),))
            else:
                outcomes = tuple(
                    (float(self._entry[s2]), (w - 1, s2 + 1))
                    for s2 in range(self._m)
                    if self._entry[s2] > 0
                )
            out.append(Completion(rate * ex, outcomes))
        return out

    def arrivals(self, state: LocalState):
        w, s = state
        if s == 0:
            return [
                (float(self._entry[s2]), (0, s2 + 1))
                for s2 in range(self._m)
                if self._entry[s2] > 0
            ]
        return [(1.0, (w + 1, s))]


def automaton_for(station: Station) -> StationAutomaton:
    """Pick the exact automaton for a station (see module docstring)."""
    if station.dist.n_stages == 1:
        return ExponentialAutomaton(station)
    if station.is_delay:
        return DelayPHAutomaton(station)
    return QueuedPHAutomaton(station)


def _compositions(n: int, parts: int):
    """Yield all tuples of ``parts`` nonnegative ints summing to ``n``."""
    if parts == 1:
        yield (n,)
        return
    for first in range(n + 1):
        for rest in _compositions(n - first, parts - 1):
            yield (first,) + rest
