"""Linear-Algebraic Queueing Theory machinery (paper §3, §5.4).

Single-customer stage expansion (:class:`ServiceNetwork`), reduced-product
state spaces, station automata and the multi-customer level operators
``M_k, P_k, Q_k, R_k``.
"""

from repro.laqt.service import ServiceNetwork
from repro.laqt.states import (
    LevelRegistry,
    LevelSpace,
    build_spaces,
    reduced_product_count,
)
from repro.laqt.automata import (
    AutomatonTables,
    ExponentialAutomaton,
    DelayPHAutomaton,
    QueuedPHAutomaton,
    automaton_for,
)
from repro.laqt.operators import (
    LevelOperators,
    build_entrance,
    build_entrance_reference,
    build_level,
    build_level_reference,
)

__all__ = [
    "ServiceNetwork",
    "LevelRegistry",
    "LevelSpace",
    "build_spaces",
    "reduced_product_count",
    "AutomatonTables",
    "ExponentialAutomaton",
    "DelayPHAutomaton",
    "QueuedPHAutomaton",
    "automaton_for",
    "LevelOperators",
    "build_level",
    "build_entrance",
    "build_level_reference",
    "build_entrance_reference",
]
