"""Order-statistics (fork/join) baseline.

The paper's introduction (§1) notes that when parallel tasks are fully
independent — separate hardware, no shared resources — the makespan is an
order-statistics problem: with iid task times the completion time of a
batch of ``K`` is the maximum.  The paper's point is that shared resources
make this model *inadequate*; this module implements it so the claim can
be quantified (the bench compares it with the contention-aware transient
model as the shared-server load grows).
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import quad

from repro.distributions.base import MatrixExponential
from repro.distributions.operations import convolve
from repro.distributions.ph import PHDistribution

__all__ = ["expected_max", "fork_join_makespan"]


def expected_max(dist: MatrixExponential, K: int, *, tol: float = 1e-10) -> float:
    """``E[max of K iid]`` for a matrix-exponential task-time law.

    Computed as ``∫₀^∞ (1 − F(t)^K) dt`` with adaptive quadrature; the
    integrand is evaluated through the exact reliability function
    ``R(t) = Ψ[exp(−tB)]``.
    """
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    K = int(K)
    if K == 1:
        return dist.mean

    def integrand(t: float) -> float:
        return 1.0 - (1.0 - dist.sf(t)) ** K

    # Split the infinite integral at a scale where the tail is tame.
    split = dist.mean * (1.0 + np.log(K))
    head, _ = quad(integrand, 0.0, split, epsabs=tol, epsrel=tol, limit=500)
    tail, _ = quad(
        integrand, split, np.inf, epsabs=tol, epsrel=tol, limit=500
    )
    return float(head + tail)


def _ph_power(dist: PHDistribution, n: int) -> PHDistribution:
    """``n``-fold convolution of a PH distribution with itself."""
    out = dist
    for _ in range(n - 1):
        out = convolve(out, dist)
    return out


def fork_join_makespan(dist: PHDistribution, K: int, N: int) -> float:
    """Mean makespan of ``N`` iid tasks statically split over ``K`` machines.

    Tasks are dealt round-robin, so machine loads are ``⌈N/K⌉``- or
    ``⌊N/K⌋``-fold convolutions of the task law; the makespan is the
    expected maximum of the (independent, not identically distributed)
    machine loads, ``∫ (1 − Π_i F_i(t)) dt``.

    This is the *independent tasks* model: no queueing for shared
    resources, which is why it underestimates real cluster makespans.
    """
    if K < 1 or int(K) != K or N < 1 or int(N) != N:
        raise ValueError(f"K and N must be positive integers, got {K!r}, {N!r}")
    K, N = int(K), int(N)
    K = min(K, N)
    hi, lo = N % K, K - N % K
    loads: list[MatrixExponential] = []
    if N // K + 1 > 0 and hi:
        loads.append(_ph_power(dist, N // K + 1))
    if N // K > 0 and lo:
        loads.append(_ph_power(dist, N // K))
    counts = [c for c in (hi, lo) if c]

    def integrand(t: float) -> float:
        prod = 1.0
        for load, c in zip(loads, counts):
            prod *= (1.0 - load.sf(t)) ** c
        return 1.0 - prod

    mean_total = N * dist.mean / K
    split = mean_total * (1.0 + np.log(max(K, 2)))
    head, _ = quad(integrand, 0.0, split, epsabs=1e-9, epsrel=1e-9, limit=500)
    tail, _ = quad(integrand, split, np.inf, epsabs=1e-9, epsrel=1e-9, limit=500)
    return float(head + tail)
