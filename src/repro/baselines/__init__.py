"""Baseline models the paper compares against or supersedes."""

from repro.baselines.order_stats import expected_max, fork_join_makespan

__all__ = ["expected_max", "fork_join_makespan"]
