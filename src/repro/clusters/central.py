"""Central-storage cluster model (paper §5.4).

``K`` workstations, each with a dedicated CPU and a dedicated local disk,
share one communication channel and one central (remote) disk.  Because
tasks never queue for dedicated hardware, all CPUs collapse into one
load-dependent *bank* and likewise all local disks, leaving four stations
regardless of ``K`` — the reduction that takes the state space from
``(2K+1)^K`` to ``C(K+3, K)`` in the paper.

Task activity (paper Figure 1): CPU burst → with probability ``q`` the
task finishes; otherwise local disk (``p₁``) or comm channel → central
disk → back to CPU (``p₂``).
"""

from __future__ import annotations

import numpy as np

from repro.clusters.application import ApplicationModel
from repro.distributions.shapes import Shape
from repro.network.spec import DELAY, NetworkSpec, Station

__all__ = ["central_cluster", "CENTRAL_STATIONS"]

#: Station names in construction order.
CENTRAL_STATIONS = ("cpu", "disk", "comm", "rdisk")


def central_cluster(
    app: ApplicationModel,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Build the 4-station central-cluster network for an application.

    Parameters
    ----------
    app:
        Application model supplying routing probabilities and per-visit
        means.
    shapes:
        Optional service-distribution shapes per station name (``"cpu"``,
        ``"disk"``, ``"comm"``, ``"rdisk"``); anything unspecified is
        exponential.  The paper's §6.1 experiments set a Hyperexponential
        ``"rdisk"`` (shared server); §6.2 sets Erlang/H2 ``"cpu"``
        (dedicated server).

    Notes
    -----
    The population bound ``K`` is *not* part of the network: dedicated
    banks scale with load automatically, and the shared stations are single
    servers whatever ``K`` is.  Pass ``K`` to the solver
    (:class:`repro.core.TransientModel`) instead.
    """
    shapes = dict(shapes or {})
    unknown = set(shapes) - set(CENTRAL_STATIONS)
    if unknown:
        raise ValueError(
            f"unknown station shapes {sorted(unknown)}; valid: {CENTRAL_STATIONS}"
        )

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    stations = (
        Station("cpu", shape("cpu").with_mean(app.t_cpu), DELAY),
        Station("disk", shape("disk").with_mean(app.t_disk), DELAY),
        Station("comm", shape("comm").with_mean(app.t_comm), 1),
        Station("rdisk", shape("rdisk").with_mean(app.t_rdisk), 1),
    )
    q, p1, p2 = app.q, app.p1, app.p2
    routing = np.array(
        [
            #  cpu        disk            comm            rdisk
            [0.0, p1 * (1.0 - q), p2 * (1.0 - q), 0.0],  # cpu (exit prob q)
            [1.0, 0.0, 0.0, 0.0],                        # disk → cpu
            [0.0, 0.0, 0.0, 1.0],                        # comm → rdisk
            [1.0, 0.0, 0.0, 0.0],                        # rdisk → cpu
        ]
    )
    entry = np.array([1.0, 0.0, 0.0, 0.0])  # tasks start at the CPU
    return NetworkSpec(stations=stations, routing=routing, entry=entry)
