"""Model extensions the paper names but does not develop (§5, §7).

    "More parameters always can be added to the basic model (e.g.,
    scheduling overhead, multitasking, ...)"

Three such extensions, each staying inside the exact reduced-product
framework:

* **Scheduling overhead** — every dispatch passes through a scheduler
  station before reaching a CPU.  The scheduler is a shared single server
  (one dispatcher for the cluster), so heavy scheduling traffic becomes a
  contention point exactly as in real resource managers.
* **Multitasking** — more tasks than workstations are *admitted* and the
  CPUs/local disks time-share: instead of a dedicated bank (rate ``n·µ``)
  the CPU pool is a ``K``-server station (rate ``min(n, K)·µ``).  With a
  multiprogramming level of 1 this reduces *exactly* to the base model
  (``n ≤ K`` makes the two rate functions equal), which the tests verify.
* **Heterogeneous storage** — distributed clusters with per-disk speed
  factors, the setting of the authors' data-allocation work [15]: weights
  decide where data lives, speeds decide how fast each disk serves it.
"""

from __future__ import annotations

import numpy as np

from repro.clusters.application import ApplicationModel
from repro.distributions.shapes import Shape
from repro.network.spec import DELAY, NetworkSpec, Station

__all__ = [
    "central_cluster_with_scheduler",
    "central_cluster_multitasking",
    "heterogeneous_distributed_cluster",
]


def central_cluster_with_scheduler(
    app: ApplicationModel,
    overhead: float,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Central cluster with an explicit dispatch stage.

    Every computation cycle is dispatched through a shared scheduler
    station with mean service ``overhead`` before the CPU burst begins —
    the "scheduling overhead" extension of §5.  Stations:
    ``sched → cpu → {disk | comm → rdisk} → sched …``; tasks enter at the
    scheduler and exit from the CPU.

    Parameters
    ----------
    overhead:
        Mean scheduler service time per dispatch (> 0).  Total scheduling
        demand per task is ``overhead / q`` (one dispatch per cycle).
    shapes:
        Optional shapes for ``"sched"``, ``"cpu"``, ``"disk"``, ``"comm"``,
        ``"rdisk"``.
    """
    if overhead <= 0:
        raise ValueError(f"overhead must be positive, got {overhead!r}")
    shapes = dict(shapes or {})
    valid = {"sched", "cpu", "disk", "comm", "rdisk"}
    unknown = set(shapes) - valid
    if unknown:
        raise ValueError(f"unknown station shapes {sorted(unknown)}; valid: {sorted(valid)}")

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    stations = (
        Station("sched", shape("sched").with_mean(overhead), 1),
        Station("cpu", shape("cpu").with_mean(app.t_cpu), DELAY),
        Station("disk", shape("disk").with_mean(app.t_disk), DELAY),
        Station("comm", shape("comm").with_mean(app.t_comm), 1),
        Station("rdisk", shape("rdisk").with_mean(app.t_rdisk), 1),
    )
    q, p1, p2 = app.q, app.p1, app.p2
    routing = np.array(
        [
            # sched  cpu              disk            comm            rdisk
            [0.0, 1.0, 0.0, 0.0, 0.0],                      # sched → cpu
            [0.0, 0.0, p1 * (1 - q), p2 * (1 - q), 0.0],    # cpu (exit q)
            [1.0, 0.0, 0.0, 0.0, 0.0],                      # disk → sched
            [0.0, 0.0, 0.0, 0.0, 1.0],                      # comm → rdisk
            [1.0, 0.0, 0.0, 0.0, 0.0],                      # rdisk → sched
        ]
    )
    entry = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
    return NetworkSpec(stations=stations, routing=routing, entry=entry)


def central_cluster_multitasking(
    app: ApplicationModel,
    K: int,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Central cluster whose CPUs and local disks are time-shared pools.

    Use with a population above ``K`` (e.g. ``TransientModel(spec, K*mpl)``
    for a multiprogramming level ``mpl``): the ``K`` physical CPUs serve at
    most ``K`` tasks simultaneously and the excess queues, i.e. the CPU
    pool is a ``K``-server station rather than an unbounded bank.  For
    populations ≤ K it is *identical* to :func:`central_cluster`.

    Notes
    -----
    Multi-server stations require exponential service here (the exact
    reduced-product representation of a multi-server PH station does not
    exist in this framework); non-exponential shapes are still available
    for the single-server comm/rdisk stations.
    """
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    K = int(K)
    shapes = dict(shapes or {})
    unknown = set(shapes) - {"comm", "rdisk"}
    if unknown:
        raise ValueError(
            f"unknown station shapes {sorted(unknown)}; multitasking pools are "
            "exponential — only 'comm' and 'rdisk' accept shapes"
        )

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    stations = (
        Station("cpu", Shape.exponential().with_mean(app.t_cpu), K),
        Station("disk", Shape.exponential().with_mean(app.t_disk), K),
        Station("comm", shape("comm").with_mean(app.t_comm), 1),
        Station("rdisk", shape("rdisk").with_mean(app.t_rdisk), 1),
    )
    q, p1, p2 = app.q, app.p1, app.p2
    routing = np.array(
        [
            [0.0, p1 * (1 - q), p2 * (1 - q), 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0, 0.0],
        ]
    )
    entry = np.array([1.0, 0.0, 0.0, 0.0])
    return NetworkSpec(stations=stations, routing=routing, entry=entry)


def heterogeneous_distributed_cluster(
    app: ApplicationModel,
    K: int,
    weights=None,
    speeds=None,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Distributed-storage cluster with per-disk speed factors.

    As :func:`repro.clusters.distributed_cluster`, but disk ``i`` serves
    ``speeds[i]`` times faster than the homogeneous baseline, so its
    per-visit mean is ``t_d / speeds[i]``.  Allocation weights and speeds
    compose: the demand placed on disk ``i`` is ``w_i · D / speeds[i]``.

    This is the setting of the authors' data-allocation work [15]: given
    heterogeneous disks, choose weights to balance *load* (demand), not
    data volume.
    """
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    K = int(K)
    if weights is None:
        weights = np.full(K, 1.0 / K)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (K,) or np.any(weights <= 0) or not np.isclose(weights.sum(), 1.0):
        raise ValueError(f"weights must be {K} positive values summing to 1")
    weights = weights / weights.sum()
    if speeds is None:
        speeds = np.ones(K)
    speeds = np.asarray(speeds, dtype=float)
    if speeds.shape != (K,) or np.any(speeds <= 0):
        raise ValueError(f"speeds must be {K} positive factors, got {speeds!r}")
    shapes = dict(shapes or {})
    unknown = set(shapes) - {"cpu", "disk", "comm"}
    if unknown:
        raise ValueError(f"unknown station shapes {sorted(unknown)}; valid: cpu, disk, comm")

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    q = app.q
    disk_demand = app.local_disk_time + app.remote_time
    t_disk = q * disk_demand / (1.0 - q)
    t_comm = q * app.comm_time / (1.0 - q)

    stations = [Station("cpu", shape("cpu").with_mean(app.t_cpu), DELAY)]
    stations += [
        Station(f"disk{i}", shape("disk").with_mean(t_disk / speeds[i]), 1)
        for i in range(K)
    ]
    stations.append(Station("comm", shape("comm").with_mean(t_comm), 1))

    n = K + 2
    routing = np.zeros((n, n))
    routing[0, 1 : K + 1] = weights * (1.0 - q)
    routing[1 : K + 1, K + 1] = 1.0
    routing[K + 1, 0] = 1.0
    entry = np.zeros(n)
    entry[0] = 1.0
    return NetworkSpec(stations=tuple(stations), routing=routing, entry=entry)


def load_balanced_weights(speeds) -> np.ndarray:
    """Allocation weights proportional to disk speed (equal *demand* per disk).

    With ``w_i ∝ s_i`` every disk carries demand ``D/K·(s_i/s̄)/s_i = const``
    — the load-balance rule of [15] for heterogeneous storage.
    """
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 1 or np.any(speeds <= 0):
        raise ValueError(f"speeds must be a vector of positive factors, got {speeds!r}")
    return speeds / speeds.sum()


__all__.append("load_balanced_weights")
