"""Distributed-storage cluster model (paper §5.5).

The shared data lives on the workstations' own disks instead of one
central store, so every disk is a *shared* station in its own right:
modeling ``K`` workstations needs ``K + 2`` stations — one load-dependent
CPU bank, the ``K`` disks, and the shared communication channel (replies
return over the channel, paper's distributed ``P`` matrix).

Data placement enters through the allocation weights ``w_i`` (``Σw_i = 1``):
a post-CPU access goes to disk ``i`` with probability ``p_i = w_i``, and
the time a task spends on disk ``i`` is ``w_i`` times the total disk
demand, matching §5.5's ``p_i = q·Y_i / (t_d(1−q))`` with a common
per-visit disk mean ``t_d = q·D/(1−q)`` where ``D`` is the total per-task
disk time (local I/O plus remote data: all storage is distributed here).
"""

from __future__ import annotations

import numpy as np

from repro.clusters.application import ApplicationModel
from repro.distributions.shapes import Shape
from repro.network.spec import DELAY, NetworkSpec, Station

__all__ = ["distributed_cluster"]


def distributed_cluster(
    app: ApplicationModel,
    K: int,
    weights=None,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Build the ``K + 2``-station distributed-storage network.

    Parameters
    ----------
    app:
        Application model; its local-disk and remote components together
        form the distributed disk demand ``D = (1−C)X + Y``, and ``B·Y``
        the channel demand.
    K:
        Number of workstations (and therefore of disks).  Unlike the
        central cluster the network *shape* depends on ``K`` here.
    weights:
        Data-allocation weights over the ``K`` disks (default uniform).
    shapes:
        Optional shapes for ``"cpu"``, ``"disk"`` (applied to every disk)
        and ``"comm"``; default exponential.
    """
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    K = int(K)
    if weights is None:
        weights = np.full(K, 1.0 / K)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (K,):
            raise ValueError(f"weights must have length {K}, got {weights.shape}")
        if np.any(weights <= 0) or not np.isclose(weights.sum(), 1.0, atol=1e-8):
            raise ValueError(
                f"weights must be positive and sum to 1, got {weights!r}"
            )
        weights = weights / weights.sum()
    shapes = dict(shapes or {})
    unknown = set(shapes) - {"cpu", "disk", "comm"}
    if unknown:
        raise ValueError(
            f"unknown station shapes {sorted(unknown)}; valid: cpu, disk, comm"
        )

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    q = app.q
    disk_demand = app.local_disk_time + app.remote_time
    t_disk = q * disk_demand / (1.0 - q)
    t_comm = q * app.comm_time / (1.0 - q)

    stations = [Station("cpu", shape("cpu").with_mean(app.t_cpu), DELAY)]
    stations += [
        Station(f"disk{i}", shape("disk").with_mean(t_disk), 1) for i in range(K)
    ]
    stations.append(Station("comm", shape("comm").with_mean(t_comm), 1))

    n = K + 2
    routing = np.zeros((n, n))
    # CPU → disk i with probability w_i (1 − q); exit with probability q.
    routing[0, 1 : K + 1] = weights * (1.0 - q)
    # disk i → comm channel (the reply), comm → CPU.
    routing[1 : K + 1, K + 1] = 1.0
    routing[K + 1, 0] = 1.0
    entry = np.zeros(n)
    entry[0] = 1.0
    return NetworkSpec(stations=tuple(stations), routing=routing, entry=entry)
