"""Cluster system models: application workload + central/distributed storage."""

from repro.clusters.application import ApplicationModel
from repro.clusters.central import CENTRAL_STATIONS, central_cluster
from repro.clusters.distributed import distributed_cluster
from repro.clusters.extensions import (
    central_cluster_multitasking,
    central_cluster_with_scheduler,
    heterogeneous_distributed_cluster,
    load_balanced_weights,
)
from repro.clusters.grid import grid_cluster

__all__ = [
    "ApplicationModel",
    "CENTRAL_STATIONS",
    "central_cluster",
    "distributed_cluster",
    "central_cluster_multitasking",
    "central_cluster_with_scheduler",
    "heterogeneous_distributed_cluster",
    "load_balanced_weights",
    "grid_cluster",
]
