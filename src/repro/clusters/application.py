"""The paper's application model (§5.1).

A parallel application is a set of iid tasks, each a geometric number of
*computation cycles*: a CPU burst, then (unless the task finishes) a local
I/O or a remote-data access.  The mean contention-free task time splits
into the paper's components

.. math::

    E(T) = C·X + (1−C)·X + B·Y + Y,

where ``C·X`` is local CPU time, ``(1−C)·X`` local disk time, ``Y`` remote
disk time and ``B·Y`` the communication-channel time spent reaching it.

The paper leaves two degrees of freedom open when mapping components onto
the Markov routing parameters ``(q, p₁, p₂)``: the mean number of cycles
``1/q`` and the local/remote split of cycles.  They are explicit here
(``cycles`` and ``remote_fraction``), and §5.4's relations then determine
every per-visit service mean:

====================  =============================  =========================
station               visits per task                per-visit mean
====================  =============================  =========================
CPU                   ``1/q``                        ``t_cpu = q·CX``
local disk            ``p₁(1−q)/q``                  ``t_d = q(1−C)X / (p₁(1−q))``
comm channel          ``p₂(1−q)/q``                  ``t_com = q·BY / (p₂(1−q))``
remote disk           ``p₂(1−q)/q``                  ``t_rd = q·Y / (p₂(1−q))``
====================  =============================  =========================

with ``q = t_cpu / CX`` and ``p₁ + p₂ = 1`` holding by construction (the
paper's consistency requirement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.validation import check_positive, check_probability

__all__ = ["ApplicationModel"]


@dataclass(frozen=True)
class ApplicationModel:
    """Workload parameters of one task (all times contention-free means).

    Parameters
    ----------
    compute_fraction:
        ``C`` — fraction of local time spent on the CPU, in (0, 1).
    local_time:
        ``X`` — total local time (CPU + local disk).
    remote_time:
        ``Y`` — total remote-disk service time.
    comm_factor:
        ``B`` — communication overhead per unit of remote work; the channel
        carries ``B·Y`` per task.
    cycles:
        Mean number of computation cycles ``1/q`` (> 1).
    remote_fraction:
        ``p₂`` — probability a post-CPU move is a remote access (0 < p₂ < 1
        so both I/O paths are exercised).
    """

    compute_fraction: float = 0.5
    local_time: float = 8.0
    remote_time: float = 3.0
    comm_factor: float = 1.0 / 3.0
    cycles: float = 10.0
    remote_fraction: float = 0.4

    def __post_init__(self):
        C = check_probability(self.compute_fraction, "compute_fraction")
        if not (0.0 < C < 1.0):
            raise ValueError(f"compute_fraction must be inside (0, 1), got {C!r}")
        check_positive(self.local_time, "local_time")
        check_positive(self.remote_time, "remote_time")
        check_positive(self.comm_factor, "comm_factor")
        if self.cycles <= 1.0:
            raise ValueError(
                f"cycles must exceed 1 (q < 1 so I/O happens), got {self.cycles!r}"
            )
        p2 = check_probability(self.remote_fraction, "remote_fraction")
        if not (0.0 < p2 < 1.0):
            raise ValueError(
                f"remote_fraction must be inside (0, 1), got {p2!r}"
            )

    # ------------------------------------------------------------------
    # paper notation
    # ------------------------------------------------------------------
    @property
    def q(self) -> float:
        """Per-cycle completion probability."""
        return 1.0 / self.cycles

    @property
    def p1(self) -> float:
        """Probability a post-CPU move is a local disk access."""
        return 1.0 - self.remote_fraction

    @property
    def p2(self) -> float:
        """Probability a post-CPU move is a remote access."""
        return self.remote_fraction

    @property
    def cpu_time(self) -> float:
        """``C·X`` — total CPU time per task."""
        return self.compute_fraction * self.local_time

    @property
    def local_disk_time(self) -> float:
        """``(1−C)·X`` — total local disk time per task."""
        return (1.0 - self.compute_fraction) * self.local_time

    @property
    def comm_time(self) -> float:
        """``B·Y`` — total communication time per task."""
        return self.comm_factor * self.remote_time

    @property
    def remote_disk_time(self) -> float:
        """``Y`` — total remote disk time per task."""
        return self.remote_time

    @property
    def task_time(self) -> float:
        """Mean contention-free task time ``E(T) = X + (1 + B)·Y``."""
        return self.local_time + (1.0 + self.comm_factor) * self.remote_time

    # ------------------------------------------------------------------
    # per-visit service means (§5.4 inverted)
    # ------------------------------------------------------------------
    @property
    def t_cpu(self) -> float:
        """Per-visit CPU service mean."""
        return self.q * self.cpu_time

    @property
    def t_disk(self) -> float:
        """Per-visit local-disk service mean."""
        return self.q * self.local_disk_time / (self.p1 * (1.0 - self.q))

    @property
    def t_comm(self) -> float:
        """Per-visit communication-channel service mean."""
        return self.q * self.comm_time / (self.p2 * (1.0 - self.q))

    @property
    def t_rdisk(self) -> float:
        """Per-visit remote-disk service mean."""
        return self.q * self.remote_time / (self.p2 * (1.0 - self.q))

    def with_remote_time(self, remote_time: float) -> "ApplicationModel":
        """Copy with a different ``Y`` (used for contention sweeps)."""
        return ApplicationModel(
            compute_fraction=self.compute_fraction,
            local_time=self.local_time,
            remote_time=remote_time,
            comm_factor=self.comm_factor,
            cycles=self.cycles,
            remote_fraction=self.remote_fraction,
        )
