"""Grid of clusters: a two-level topology in the spirit of the paper's
Grid citation (Foster & Kesselman [7]).

``G`` symmetric sites, each with the central-cluster anatomy (CPU bank,
local-disk bank, site channel, site storage), joined by a full-duplex
wide-area link modeled as two single-server stations (``wan_up`` for
requests, ``wan_dn`` for replies):

* a remote access resolves to the site's own storage with probability
  ``locality``; otherwise the request crosses ``wan_up`` to a uniformly
  chosen site's storage and the reply returns over ``wan_dn``;
* tasks enter at a uniformly chosen site.

**Semantics — migrate-to-data.**  A single-class network cannot remember
a task's home site across a cross-site hop, so after one the task
continues from the site that served it (uniformly mixed): the scheduler
moves work to where the data lives, a standard grid execution model.
Site-pinned tasks would need per-class populations, which neither this
framework nor the paper models.

Every request reaches storage exactly once, so visit ratios follow the
central-cluster pattern: the WAN stations each see ``(1 − locality)``
of the remote visits, and the WAN becomes the system bottleneck once
``(1 − locality) · wan_factor`` outweighs the per-site demands — swept in
the grid example.
"""

from __future__ import annotations

import numpy as np

from repro._util.validation import check_probability, check_positive
from repro.clusters.application import ApplicationModel
from repro.distributions.shapes import Shape
from repro.network.spec import DELAY, NetworkSpec, Station

__all__ = ["grid_cluster"]


def grid_cluster(
    app: ApplicationModel,
    sites: int,
    *,
    locality: float = 0.8,
    wan_factor: float = 3.0,
    shapes: dict[str, Shape] | None = None,
) -> NetworkSpec:
    """Build a ``sites``-site grid (``4·G + 2`` stations).

    Parameters
    ----------
    locality:
        Probability a remote access stays on the requesting site.
    wan_factor:
        WAN transfer mean relative to a site-channel transfer (≥ 1).
    shapes:
        Optional shapes for ``"cpu"``, ``"disk"``, ``"comm"``, ``"rdisk"``,
        ``"wan"`` (applied to each instance of the role).
    """
    if sites < 2 or int(sites) != sites:
        raise ValueError(f"need at least 2 sites, got {sites!r}")
    G = int(sites)
    locality = check_probability(locality, "locality")
    wan_factor = check_positive(wan_factor, "wan_factor")
    if wan_factor < 1.0:
        raise ValueError(f"wan_factor must be >= 1, got {wan_factor!r}")
    shapes = dict(shapes or {})
    valid = {"cpu", "disk", "comm", "rdisk", "wan"}
    unknown = set(shapes) - valid
    if unknown:
        raise ValueError(
            f"unknown station shapes {sorted(unknown)}; valid: {sorted(valid)}"
        )

    def shape(name: str) -> Shape:
        return shapes.get(name, Shape.exponential())

    t_wan = wan_factor * app.t_comm
    stations: list[Station] = []
    for g in range(G):
        stations += [
            Station(f"cpu{g}", shape("cpu").with_mean(app.t_cpu), DELAY),
            Station(f"disk{g}", shape("disk").with_mean(app.t_disk), DELAY),
            Station(f"comm{g}", shape("comm").with_mean(app.t_comm), 1),
            Station(f"rdisk{g}", shape("rdisk").with_mean(app.t_rdisk), 1),
        ]
    stations.append(Station("wan_up", shape("wan").with_mean(t_wan), 1))
    stations.append(Station("wan_dn", shape("wan").with_mean(t_wan), 1))
    n = 4 * G + 2
    wan_up, wan_dn = n - 2, n - 1

    q, p1, p2 = app.q, app.p1, app.p2
    routing = np.zeros((n, n))
    for g in range(G):
        cpu, disk, comm, rdisk = 4 * g, 4 * g + 1, 4 * g + 2, 4 * g + 3
        routing[cpu, disk] = p1 * (1.0 - q)  # exit q stays at the CPU row
        routing[cpu, comm] = p2 * (1.0 - q)
        routing[disk, cpu] = 1.0
        routing[comm, rdisk] = locality
        routing[comm, wan_up] = 1.0 - locality
        # Storage replies: local requests return to the site's CPUs, the
        # rest (cross-site traffic, a `1 − locality` share under the
        # symmetric mix) go back over the WAN.
        routing[rdisk, cpu] = locality
        routing[rdisk, wan_dn] = 1.0 - locality
        # Requests land on a uniformly chosen site's storage, replies on a
        # uniformly chosen site's CPUs (migrate-to-data).
        routing[wan_up, rdisk] = 1.0 / G
        routing[wan_dn, cpu] = 1.0 / G
    entry = np.zeros(n)
    for g in range(G):
        entry[4 * g] = 1.0 / G
    return NetworkSpec(stations=tuple(stations), routing=routing, entry=entry)
