"""repro — transient LAQT models of parallel and distributed systems.

A from-scratch reproduction of Mohamed, Lipsky & Ammar, *Modeling Parallel
and Distributed Systems with Finite Workloads* (IPPS 2004): a transient
(finite-population, finite-workload) solver for queueing networks built on
Linear-Algebraic Queueing Theory, together with the substrates the paper
relies on — phase-type distribution algebra, cluster system models,
product-form baselines, and a discrete-event simulator for validation.

Typical usage::

    from repro import ApplicationModel, central_cluster, TransientModel, Shape

    app = ApplicationModel()                       # E(T) = 12 per task
    spec = central_cluster(app, {"rdisk": Shape.hyperexp(10.0)})
    model = TransientModel(spec, K=5)              # 5 workstations
    times = model.interdeparture_times(N=30)       # the paper's Figure 3
    makespan = model.makespan(N=30)
"""

from repro.clusters import (
    ApplicationModel,
    central_cluster,
    central_cluster_multitasking,
    central_cluster_with_scheduler,
    distributed_cluster,
    heterogeneous_distributed_cluster,
    load_balanced_weights,
)
from repro.core import (
    TransientModel,
    SteadyState,
    solve_steady_state,
    Regions,
    decompose_regions,
    speedup,
    prediction_error,
    exponential_twin,
    utilizations,
    approximate_makespan,
    analyze_sojourn,
    time_stationary_distribution,
)
from repro.distributions import (
    MatrixExponential,
    PHDistribution,
    Shape,
    exponential,
    erlang,
    hyperexponential,
    hypoexponential,
    coxian,
    truncated_power_tail,
    fit_h2,
    fit_scv,
)
from repro.jackson import convolution_analysis, mva_analysis, open_jackson_analysis
from repro.markov import MakespanAnalyzer
from repro.network import DELAY, NetworkSpec, Station
from repro.queues import FiniteSourceQueue, MG1Queue
from repro.resilience import (
    Budget,
    BudgetExceededError,
    ConvergenceError,
    FaultPlan,
    GuardConfig,
    NumericalHealthError,
    ResilienceConfig,
    ResilientResult,
    SingularLevelError,
    SolverError,
    SolverReport,
    solve_resilient,
)
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    Tracer,
    profiled,
)
from repro.simulation import (
    generate_traces,
    replay_traces,
    simulate_once,
    simulate_study,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationModel",
    "central_cluster",
    "central_cluster_multitasking",
    "central_cluster_with_scheduler",
    "distributed_cluster",
    "heterogeneous_distributed_cluster",
    "load_balanced_weights",
    "analyze_sojourn",
    "time_stationary_distribution",
    "TransientModel",
    "SteadyState",
    "solve_steady_state",
    "Regions",
    "decompose_regions",
    "speedup",
    "prediction_error",
    "exponential_twin",
    "utilizations",
    "approximate_makespan",
    "MatrixExponential",
    "PHDistribution",
    "Shape",
    "exponential",
    "erlang",
    "hyperexponential",
    "hypoexponential",
    "coxian",
    "truncated_power_tail",
    "fit_h2",
    "fit_scv",
    "convolution_analysis",
    "mva_analysis",
    "open_jackson_analysis",
    "MakespanAnalyzer",
    "DELAY",
    "NetworkSpec",
    "Station",
    "simulate_once",
    "simulate_study",
    "generate_traces",
    "replay_traces",
    "FiniteSourceQueue",
    "MG1Queue",
    "Budget",
    "BudgetExceededError",
    "ConvergenceError",
    "FaultPlan",
    "GuardConfig",
    "NumericalHealthError",
    "ResilienceConfig",
    "ResilientResult",
    "SingularLevelError",
    "SolverError",
    "SolverReport",
    "solve_resilient",
    "Instrumentation",
    "MetricsRegistry",
    "Tracer",
    "profiled",
    "__version__",
]
