"""The makespan *distribution* of a finite workload.

The transient model of §4 gives the mean of every departure epoch; because
each epoch is a phase-type passage, the entire execution is itself one big
absorbing CTMC and the makespan is phase-type distributed.  This module
assembles that chain explicitly:

* macro-level ``j`` (``0 ≤ j < N`` departures completed) carries the level
  space Ξ_{min(K, N−j)};
* within a block, transitions are the embedded ``M_k · P_k`` rates;
* a departure moves block ``j → j+1`` through ``M_k · Q_k``, composed with
  the refill operator ``R_K`` while a backlog remains;
* the ``N``-th departure absorbs.

From the sparse transient generator we get exact makespan moments (two
triangular solves) and the full CDF by uniformization — information beyond
the paper's mean-value analysis, used for the variance/percentile
extensions and as another cross-check of ``E(T)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.transient import TransientModel
from repro.markov.ctmc import transient_distribution

__all__ = ["MakespanAnalyzer"]


class MakespanAnalyzer:
    """Absorbing-chain view of executing ``N`` tasks on ``K`` workstations.

    Parameters
    ----------
    model:
        A transient model (its cached level operators are reused).
    N:
        Workload size.
    departures:
        Absorb after this many departures instead of all ``N``: the
        analyzer then describes the *completion time of the
        ``departures``-th task* within the ``N``-task run (its mean equals
        the corresponding prefix sum of the inter-departure times).
        Defaults to ``N`` (the makespan).
    """

    def __init__(self, model: TransientModel, N: int, departures: int | None = None):
        if N < 1 or int(N) != N:
            raise ValueError(f"N must be a positive integer, got {N!r}")
        if departures is None:
            departures = int(N)
        if not 1 <= departures <= N or int(departures) != departures:
            raise ValueError(
                f"departures must be an integer in 1..{N}, got {departures!r}"
            )
        self._model = model
        self._N = int(N)
        self._departures = int(departures)
        self._build()

    def _build(self):
        model, N = self._model, self._N
        K = model.K
        levels = [min(K, N - j) for j in range(self._departures)]
        dims = [model.level(k).dim for k in levels]
        offsets = np.concatenate([[0], np.cumsum(dims)])
        total = int(offsets[-1])

        blocks_r: list[int] = []
        blocks_c: list[int] = []
        blocks_v: list[float] = []

        def add(coo: sp.coo_matrix, r0: int, c0: int):
            blocks_r.extend((coo.row + r0).tolist())
            blocks_c.extend((coo.col + c0).tolist())
            blocks_v.extend(coo.data.tolist())

        for j in range(self._departures):
            k = levels[j]
            ops = model.level(k)
            rates = ops.rates
            # Within-block: M_k (P_k − I).
            within = sp.diags(rates) @ ops.P - sp.diags(rates)
            add(within.tocoo(), offsets[j], offsets[j])
            if j == self._departures - 1:
                continue  # the target departure absorbs
            dep = sp.diags(rates) @ ops.Q
            if levels[j + 1] == k:  # backlog remains: instant refill
                dep = dep @ ops.R
            add(dep.tocoo(), offsets[j], offsets[j + 1])

        self._G = sp.csr_matrix(
            (blocks_v, (blocks_r, blocks_c)), shape=(total, total)
        )
        x0 = np.zeros(total)
        x0[: dims[0]] = model.entrance_vector(levels[0])
        self._x0 = x0
        self._lu: spla.SuperLU | None = None
        self._m1: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def departures(self) -> int:
        """Which departure's completion time this analyzer describes."""
        return self._departures

    @property
    def n_states(self) -> int:
        """Number of transient macro-states."""
        return self._G.shape[0]

    @property
    def generator(self) -> sp.csr_matrix:
        """The transient-part generator (copy)."""
        return self._G.copy()

    def _factorize(self) -> spla.SuperLU:
        if self._lu is None:
            self._lu = spla.splu((-self._G).tocsc())
        return self._lu

    def mean(self) -> float:
        """Exact ``E[T]`` — must equal ``TransientModel.makespan(N)``."""
        if self._m1 is None:
            self._m1 = self._factorize().solve(np.ones(self.n_states))
        return float(self._x0 @ self._m1)

    def moment2(self) -> float:
        """Exact second moment ``E[T²]``."""
        if self._m1 is None:
            self.mean()
        m2 = self._factorize().solve(2.0 * self._m1)
        return float(self._x0 @ m2)

    def variance(self) -> float:
        """Exact makespan variance."""
        return self.moment2() - self.mean() ** 2

    def std(self) -> float:
        """Exact makespan standard deviation."""
        return float(np.sqrt(max(self.variance(), 0.0)))

    def scv(self) -> float:
        """Squared coefficient of variation of the makespan."""
        m = self.mean()
        return self.variance() / (m * m)

    def cdf(self, times) -> np.ndarray:
        """``P(T ≤ t)`` at each requested time, by uniformization."""
        times = np.atleast_1d(np.asarray(times, dtype=float))
        x = transient_distribution(self._G, self._x0, times)
        return 1.0 - x.sum(axis=1)

    def sf(self, times) -> np.ndarray:
        """``P(T > t)`` at each requested time."""
        return 1.0 - self.cdf(times)

    def quantile(self, q: float) -> float:
        """Makespan quantile by bisection on the CDF."""
        from scipy.optimize import brentq

        q = float(q)
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantile level must be in (0, 1), got {q!r}")
        hi = self.mean()
        while float(self.cdf(hi)[0]) < q:
            hi *= 2.0
        return float(brentq(lambda t: float(self.cdf(t)[0]) - q, 0.0, hi, xtol=1e-9))
