"""Transient CTMC utilities and the exact makespan distribution."""

from repro.markov.ctmc import (
    stationary_distribution,
    transient_distribution,
    uniformized_dtmc,
    validate_generator,
)
from repro.markov.makespan import MakespanAnalyzer

__all__ = [
    "stationary_distribution",
    "transient_distribution",
    "uniformized_dtmc",
    "validate_generator",
    "MakespanAnalyzer",
]
