"""Generic continuous-time Markov chain utilities.

Sparse-generator routines used by the makespan analyzer and available as a
general substrate: stationary distributions, transient distributions via
uniformization (Jensen's method), and expected hitting times for absorbing
chains.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.stats import poisson

from repro._util.linalg import stationary_left_vector

__all__ = ["validate_generator", "stationary_distribution", "transient_distribution", "uniformized_dtmc"]


def validate_generator(Q: sp.spmatrix, *, atol: float = 1e-8) -> sp.csr_matrix:
    """Check that ``Q`` is a proper (sub)generator and return it as CSR.

    Off-diagonal entries must be nonnegative and row sums at most zero
    (strictly negative rows are allowed: they leak into an implicit
    absorbing state).
    """
    Q = sp.csr_matrix(Q, dtype=float)
    if Q.shape[0] != Q.shape[1]:
        raise ValueError(f"generator must be square, got {Q.shape}")
    off = Q.copy()
    off.setdiag(0.0)
    if off.count_nonzero() and off.min() < -atol:
        raise ValueError("generator has negative off-diagonal entries")
    rows = np.asarray(Q.sum(axis=1)).ravel()
    if np.any(rows > atol):
        raise ValueError(f"generator rows must sum to <= 0, max row sum {rows.max()!r}")
    return Q


def uniformized_dtmc(Q: sp.csr_matrix, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
    """Uniformized jump chain ``P = I + Q/Λ`` and the uniformization rate ``Λ``."""
    diag = -Q.diagonal()
    lam = float(diag.max()) if rate is None else float(rate)
    if lam <= 0:
        raise ValueError("uniformization rate must be positive (generator is zero?)")
    P = sp.identity(Q.shape[0], format="csr") + Q / lam
    return P.tocsr(), lam


def transient_distribution(
    Q: sp.spmatrix,
    x0: np.ndarray,
    times,
    *,
    tol: float = 1e-12,
) -> np.ndarray:
    """State distribution ``x(t) = x0 e^{Qt}`` at each requested time.

    Uses uniformization: ``x(t) = Σ_n Pois(n; Λt) x0 Pᵁⁿ``, truncating the
    Poisson sum once the accumulated mass exceeds ``1 − tol``.  Rows of the
    result correspond to ``times``.  For substochastic generators the
    missing mass is the absorption probability.
    """
    Q = validate_generator(Q)
    x0 = np.asarray(x0, dtype=float)
    times = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(times < 0):
        raise ValueError("times must be nonnegative")
    P, lam = uniformized_dtmc(Q)
    t_max = times.max()
    # Truncation point covering the largest time.
    n_max = int(poisson.ppf(1.0 - tol, lam * t_max)) + 1 if t_max > 0 else 0
    out = np.zeros((times.shape[0], x0.shape[0]))
    xn = x0.copy()
    weights = np.stack([poisson.pmf(np.arange(n_max + 1), lam * t) for t in times])
    for n in range(n_max + 1):
        out += weights[:, n : n + 1] * xn[None, :]
        if n < n_max:
            xn = xn @ P
    return out


def stationary_distribution(Q: sp.spmatrix, *, tol: float = 1e-12) -> np.ndarray:
    """Stationary distribution of an irreducible conservative generator.

    Solved by power iteration on the uniformized chain (matrix-free, no
    dense factorization needed).
    """
    Q = validate_generator(Q)
    rows = np.asarray(Q.sum(axis=1)).ravel()
    if np.any(rows < -1e-8):
        raise ValueError("stationary distribution requires a conservative generator")
    P, _ = uniformized_dtmc(Q)
    # Damping avoids periodicity of the embedded chain.
    half = 0.5
    return stationary_left_vector(
        lambda x: half * x + (1 - half) * (x @ P), Q.shape[0], tol=tol
    )
