"""Truncated power-tail (TPT) distributions.

The paper's introduction motivates non-exponential modeling with the
power-tail observations of Leland & Ott (CPU times) and Crovella / Lipsky
(file sizes).  Lipsky's *truncated power tail* is the standard
matrix-exponential stand-in for such behaviour: a hyperexponential mixture
whose branch probabilities and rates both decay geometrically,

.. math::

    f(t) = \\frac{1-\\theta}{1-\\theta^m}\\sum_{i=0}^{m-1}
           \\theta^i \\, \\mu\\gamma^{-i} e^{-\\mu\\gamma^{-i} t},

which matches a Pareto-like tail of index ``α = ln(1/θ)/ln(γ)`` out to a
truncation point that grows with the number of branches ``m``.  As
``m → ∞`` the variance diverges for ``α ≤ 2``.
"""

from __future__ import annotations

import numpy as np

from repro._util.validation import check_positive
from repro.distributions.builders import hyperexponential
from repro.distributions.ph import PHDistribution

__all__ = ["truncated_power_tail"]


def truncated_power_tail(
    mean: float,
    alpha: float,
    m: int = 12,
    gamma: float = 2.0,
) -> PHDistribution:
    """Truncated power-tail distribution with the given mean and tail index.

    Parameters
    ----------
    mean:
        Target mean (> 0); the base rate ``µ`` is solved for exactly.
    alpha:
        Tail index (> 0).  ``α ≤ 1`` gives an infinite-mean tail when
        untruncated; ``1 < α ≤ 2`` gives infinite variance; truncation keeps
        every moment finite but growing rapidly with ``m``.
    m:
        Number of exponential branches (truncation level), ``m ≥ 1``.
    gamma:
        Geometric rate spacing (> 1); branch ``i`` has rate ``µ γ^{-i}``.

    Returns
    -------
    PHDistribution
        A hyperexponential-``m`` in stage form.
    """
    mean = check_positive(mean, "mean")
    alpha = check_positive(alpha, "alpha")
    if m < 1 or int(m) != m:
        raise ValueError(f"m must be a positive integer, got {m!r}")
    m = int(m)
    gamma = float(gamma)
    if gamma <= 1.0:
        raise ValueError(f"gamma must exceed 1, got {gamma!r}")
    theta = gamma**-alpha
    if m == 1:
        probs = np.array([1.0])
    else:
        probs = theta ** np.arange(m)
        probs = probs * (1.0 - theta) / (1.0 - theta**m)
    # Unit base rate, then rescale so the mean comes out exactly.
    rel_rates = gamma ** -np.arange(m, dtype=float)
    raw_mean = float(np.sum(probs / rel_rates))
    mu = raw_mean / mean
    return hyperexponential(probs, mu * rel_rates)
