"""Mean-free distribution *shapes*.

Cluster builders need "this server is H2 with C² = 10" while the mean is
derived later from the application model's time components.  A
:class:`Shape` captures the family and shape parameters and instantiates a
concrete :class:`~repro.distributions.ph.PHDistribution` once the mean is
known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.distributions.builders import erlang as _erlang
from repro.distributions.builders import exponential as _exponential
from repro.distributions.fitting import fit_h2, fit_scv
from repro.distributions.ph import PHDistribution
from repro.distributions.powertail import truncated_power_tail

__all__ = ["Shape"]


@dataclass(frozen=True)
class Shape:
    """A distribution family with fixed shape, instantiated by mean.

    Use the factory classmethods rather than the constructor.
    """

    name: str
    _factory: Callable[[float], PHDistribution]
    params: dict[str, Any] = field(default_factory=dict)

    def with_mean(self, mean: float) -> PHDistribution:
        """Instantiate the shape at the given mean."""
        return self._factory(float(mean))

    def __reduce__(self):
        # The factory closure is not picklable; rebuild from (name, params)
        # instead so shapes can cross process-pool boundaries.
        return (_rebuild_shape, (self.name, dict(self.params)))

    # ------------------------------------------------------------------
    @classmethod
    def exponential(cls) -> "Shape":
        """Exponential (C² = 1)."""
        return cls("exponential", lambda mean: _exponential(1.0 / mean))

    @classmethod
    def erlang(cls, m: int) -> "Shape":
        """Erlang-``m`` (C² = 1/m)."""
        m = int(m)
        return cls("erlang", lambda mean: _erlang(m, m / mean), {"m": m})

    @classmethod
    def hyperexp(cls, scv: float, method: str = "balanced", **kwargs) -> "Shape":
        """Hyperexponential-2 with C² = ``scv`` (> 1); see :func:`fit_h2`."""
        scv = float(scv)
        return cls(
            "hyperexp",
            lambda mean: fit_h2(mean, scv, method, **kwargs),
            {"scv": scv, "method": method, **kwargs},
        )

    @classmethod
    def scv(cls, scv: float, h2_method: str = "balanced", **kwargs) -> "Shape":
        """Any C² via the :func:`fit_scv` dispatcher (Erlang mix / Exp / H2)."""
        scv = float(scv)
        return cls(
            "scv",
            lambda mean: fit_scv(mean, scv, h2_method, **kwargs),
            {"scv": scv, "h2_method": h2_method, **kwargs},
        )

    @classmethod
    def power_tail(cls, alpha: float, m: int = 12, gamma: float = 2.0) -> "Shape":
        """Truncated power tail with index ``alpha``."""
        return cls(
            "power_tail",
            lambda mean: truncated_power_tail(mean, alpha, m, gamma),
            {"alpha": alpha, "m": m, "gamma": gamma},
        )

    @classmethod
    def fixed(cls, dist: PHDistribution) -> "Shape":
        """Rescale an explicit distribution to each requested mean."""
        return cls("fixed", dist.with_mean, {"dist": dist})


def _rebuild_shape(name: str, params: dict[str, Any]) -> Shape:
    """Unpickle helper: reconstruct a :class:`Shape` from its factory name."""
    params = dict(params)
    if name == "exponential":
        return Shape.exponential()
    if name == "erlang":
        return Shape.erlang(params.pop("m"))
    if name == "hyperexp":
        return Shape.hyperexp(params.pop("scv"), params.pop("method"), **params)
    if name == "scv":
        return Shape.scv(params.pop("scv"), params.pop("h2_method"), **params)
    if name == "power_tail":
        return Shape.power_tail(**params)
    if name == "fixed":
        return Shape.fixed(params.pop("dist"))
    raise ValueError(f"cannot rebuild Shape of unknown family {name!r}")
