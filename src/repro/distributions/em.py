"""Fitting phase-type distributions to measured samples.

The paper's motivation is empirical: CPU-time and file-size measurements
(Leland & Ott; Crovella; Lipsky) are not exponential.  This module closes
the loop from *measurements* to *model input*:

* :func:`fit_hyperexponential_em` — maximum-likelihood hyperexponential-k
  via the EM algorithm for exponential mixtures (the right family for
  C² > 1 data);
* :func:`fit_erlang_ml` — maximum-likelihood Erlang order and rate (for
  C² < 1 data);
* :func:`fit_samples` — dispatcher choosing the family from the sample C².

All fitters are deterministic given the data (initialization is
quantile-based, not random).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.distributions.builders import erlang, exponential, hyperexponential
from repro.distributions.ph import PHDistribution

__all__ = [
    "EMResult",
    "fit_hyperexponential_em",
    "fit_erlang_ml",
    "fit_samples",
]


@dataclass(frozen=True)
class EMResult:
    """Outcome of an EM fit."""

    dist: PHDistribution
    log_likelihood: float
    iterations: int
    converged: bool


def _check_samples(samples) -> np.ndarray:
    x = np.asarray(samples, dtype=float).ravel()
    if x.size < 2:
        raise ValueError(f"need at least 2 samples, got {x.size}")
    if np.any(x <= 0) or not np.all(np.isfinite(x)):
        raise ValueError("samples must be positive and finite")
    return x


def _mixture_loglik(x: np.ndarray, probs: np.ndarray, rates: np.ndarray) -> float:
    dens = (probs * rates)[None, :] * np.exp(-np.outer(x, rates))
    return float(np.log(dens.sum(axis=1)).sum())


def fit_hyperexponential_em(
    samples,
    k: int = 2,
    *,
    max_iter: int = 500,
    tol: float = 1e-9,
) -> EMResult:
    """Maximum-likelihood hyperexponential-``k`` fit via EM.

    Initialization splits the sorted data into ``k`` quantile bands and
    seeds each branch with that band's rate, which keeps the fit
    deterministic and well-separated.

    Returns
    -------
    EMResult
        Converged parameters (branch probabilities and rates embedded in
        the :class:`PHDistribution`), the final log-likelihood, and
        iteration diagnostics.
    """
    x = _check_samples(samples)
    if k < 1 or int(k) != k:
        raise ValueError(f"k must be a positive integer, got {k!r}")
    k = int(k)
    if k == 1:
        rate = 1.0 / x.mean()
        return EMResult(
            dist=exponential(rate),
            log_likelihood=_mixture_loglik(x, np.ones(1), np.array([rate])),
            iterations=0,
            converged=True,
        )

    # Quantile-band initialization.
    xs = np.sort(x)
    bands = np.array_split(xs, k)
    rates = np.array([1.0 / max(b.mean(), 1e-12) for b in bands])
    probs = np.full(k, 1.0 / k)

    prev = -np.inf
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # E-step: responsibilities.
        dens = (probs * rates)[None, :] * np.exp(-np.outer(x, rates))
        total = dens.sum(axis=1, keepdims=True)
        total[total == 0.0] = np.finfo(float).tiny
        resp = dens / total
        # M-step.
        mass = resp.sum(axis=0)
        mass = np.maximum(mass, np.finfo(float).tiny)
        probs = mass / x.size
        rates = mass / (resp * x[:, None]).sum(axis=0)
        ll = _mixture_loglik(x, probs, rates)
        if abs(ll - prev) <= tol * (1.0 + abs(ll)):
            converged = True
            prev = ll
            break
        prev = ll

    order = np.argsort(rates)  # slow branch first, for reproducibility
    dist = hyperexponential(probs[order], rates[order])
    return EMResult(dist=dist, log_likelihood=prev, iterations=it, converged=converged)


def fit_erlang_ml(samples, max_order: int = 50) -> EMResult:
    """Maximum-likelihood Erlang fit (profile likelihood over the order).

    For a fixed order ``m`` the MLE rate is ``m / x̄``; the order is chosen
    by maximizing the profile log-likelihood over ``1..max_order``.
    """
    x = _check_samples(samples)
    if max_order < 1:
        raise ValueError(f"max_order must be >= 1, got {max_order!r}")
    xbar = x.mean()
    log_x_sum = float(np.log(x).sum())
    n = x.size

    def loglik(m: int) -> float:
        rate = m / xbar
        return (
            n * m * math.log(rate)
            - n * math.lgamma(m)
            + (m - 1) * log_x_sum
            - rate * float(x.sum())
        )

    lls = [loglik(m) for m in range(1, max_order + 1)]
    best = int(np.argmax(lls)) + 1
    return EMResult(
        dist=erlang(best, best / xbar),
        log_likelihood=float(lls[best - 1]),
        iterations=best,
        converged=True,
    )


def fit_samples(samples, *, branches: int = 2, max_order: int = 50) -> EMResult:
    """Family-dispatching maximum-likelihood fit.

    Uses the sample C² to pick the family: Erlang for C² < 1,
    hyperexponential-``branches`` otherwise (exponential falls out of
    either when the data supports it).
    """
    x = _check_samples(samples)
    scv = x.var() / x.mean() ** 2
    if scv < 1.0:
        return fit_erlang_ml(x, max_order=max_order)
    return fit_hyperexponential_em(x, branches)
