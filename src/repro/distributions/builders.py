"""Constructors for the standard phase-type families used in the paper.

Every constructor returns a :class:`~repro.distributions.ph.PHDistribution`
so the result can be embedded into a queueing network directly or scaled
with :meth:`~repro.distributions.ph.PHDistribution.with_mean`.
"""

from __future__ import annotations

import numpy as np

from repro._util.validation import (
    check_positive,
    check_probability,
    check_probability_vector,
)
from repro.distributions.ph import PHDistribution

__all__ = [
    "exponential",
    "erlang",
    "hypoexponential",
    "hyperexponential",
    "coxian",
]


def exponential(rate: float) -> PHDistribution:
    """Exponential distribution with the given rate (mean ``1/rate``)."""
    rate = check_positive(rate, "rate")
    return PHDistribution([1.0], [rate])


def erlang(m: int, rate: float) -> PHDistribution:
    """Erlang-``m``: ``m`` identical exponential stages in series.

    ``rate`` is the per-stage rate, so the mean is ``m / rate`` and the
    squared coefficient of variation is ``1/m`` (paper §5.4.1; Erlang-1 is
    the exponential distribution).
    """
    if m < 1 or int(m) != m:
        raise ValueError(f"Erlang order must be a positive integer, got {m!r}")
    m = int(m)
    rate = check_positive(rate, "rate")
    return hypoexponential(np.full(m, rate))


def hypoexponential(rates) -> PHDistribution:
    """Generalized Erlang: distinct-rate exponential stages in series."""
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or rates.shape[0] < 1:
        raise ValueError("rates must be a nonempty vector")
    m = rates.shape[0]
    routing = np.zeros((m, m))
    for s in range(m - 1):
        routing[s, s + 1] = 1.0
    entry = np.zeros(m)
    entry[0] = 1.0
    return PHDistribution(entry, rates, routing)


def hyperexponential(probs, rates) -> PHDistribution:
    """Hyperexponential-``m``: probabilistic mixture of exponentials.

    ``pdf(t) = Σ_i probs[i] rates[i] exp(−rates[i] t)`` (paper §5.4.2).
    """
    probs = check_probability_vector(probs, "probs")
    rates = np.asarray(rates, dtype=float)
    if rates.shape != probs.shape:
        raise ValueError(
            f"probs and rates must have the same length, got {probs.shape} vs {rates.shape}"
        )
    return PHDistribution(probs, rates)


def coxian(rates, continue_probs) -> PHDistribution:
    """Coxian distribution: series stages with early-exit probabilities.

    After stage ``s`` completes, the customer continues to stage ``s+1``
    with probability ``continue_probs[s]`` and exits otherwise; the final
    stage always exits.  ``len(continue_probs) == len(rates) - 1``.
    """
    rates = np.asarray(rates, dtype=float)
    m = rates.shape[0]
    continue_probs = np.asarray(continue_probs, dtype=float)
    if continue_probs.shape[0] != m - 1:
        raise ValueError(
            f"need {m - 1} continuation probabilities for {m} stages, "
            f"got {continue_probs.shape[0]}"
        )
    routing = np.zeros((m, m))
    for s in range(m - 1):
        routing[s, s + 1] = check_probability(continue_probs[s], f"continue_probs[{s}]")
    entry = np.zeros(m)
    entry[0] = 1.0
    return PHDistribution(entry, rates, routing)
