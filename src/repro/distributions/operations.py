"""Closure operations on phase-type distributions.

Phase type is closed under convolution (series composition), probabilistic
mixture, minimum and maximum; each operation below builds the combined
stage structure explicitly so results remain
:class:`~repro.distributions.ph.PHDistribution` instances usable anywhere
in the library (including inside network stage expansion).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.ph import PHDistribution

__all__ = ["convolve", "mixture", "minimum", "maximum"]


def convolve(first: PHDistribution, second: PHDistribution) -> PHDistribution:
    """Distribution of the sum ``X₁ + X₂`` (series composition).

    On absorption from the first block, the process enters the second block
    according to its entry vector.
    """
    m1, m2 = first.order, second.order
    rates = np.concatenate([first.rates, second.rates])
    routing = np.zeros((m1 + m2, m1 + m2))
    routing[:m1, :m1] = first.routing
    routing[:m1, m1:] = np.outer(first.exit_probs, second.entry)
    routing[m1:, m1:] = second.routing
    entry = np.concatenate([first.entry, np.zeros(m2)])
    return PHDistribution(entry, rates, routing)


def mixture(components: Sequence[tuple[float, PHDistribution]]) -> PHDistribution:
    """Probabilistic mixture ``Σ wᵢ · Xᵢ`` with weights summing to one."""
    if not components:
        raise ValueError("mixture needs at least one component")
    weights = np.array([w for w, _ in components], dtype=float)
    if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0, atol=1e-8):
        raise ValueError(f"mixture weights must be nonnegative and sum to 1, got {weights!r}")
    dists = [d for _, d in components]
    orders = [d.order for d in dists]
    total = sum(orders)
    rates = np.concatenate([d.rates for d in dists])
    routing = np.zeros((total, total))
    entry = np.zeros(total)
    at = 0
    for w, d in zip(weights, dists):
        m = d.order
        routing[at : at + m, at : at + m] = d.routing
        entry[at : at + m] = w * d.entry
        at += m
    return PHDistribution(entry, rates, routing)


def minimum(first: PHDistribution, second: PHDistribution) -> PHDistribution:
    """Distribution of ``min(X₁, X₂)`` for independent PH variables.

    Both chains run in parallel on the Kronecker product space; the first
    absorption wins, so any exit absorbs the pair.
    """
    m1, m2 = first.order, second.order
    r1, r2 = first.rates, second.rates
    pair_rates = (r1[:, None] + r2[None, :]).reshape(-1)
    n = m1 * m2
    routing = np.zeros((n, n))
    T1, T2 = first.routing, second.routing

    def _idx(i: int, j: int) -> int:
        return i * m2 + j

    for i in range(m1):
        for j in range(m2):
            src = _idx(i, j)
            tot = r1[i] + r2[j]
            for i2 in range(m1):
                if T1[i, i2] > 0:
                    routing[src, _idx(i2, j)] += r1[i] * T1[i, i2] / tot
            for j2 in range(m2):
                if T2[j, j2] > 0:
                    routing[src, _idx(i, j2)] += r2[j] * T2[j, j2] / tot
    entry = np.kron(first.entry, second.entry)
    return PHDistribution(entry, pair_rates, routing)


def maximum(first: PHDistribution, second: PHDistribution) -> PHDistribution:
    """Distribution of ``max(X₁, X₂)`` for independent PH variables.

    State space: the pair block (both still running) followed by a block
    for "only X₁ alive" and one for "only X₂ alive"; absorption of one
    chain moves to the survivor's block, absorption of the survivor exits.
    This is the fork/join synchronization primitive of the order-statistics
    baseline (paper §1).
    """
    m1, m2 = first.order, second.order
    r1, r2 = first.rates, second.rates
    n_pair = m1 * m2
    n = n_pair + m1 + m2
    rates = np.concatenate([(r1[:, None] + r2[None, :]).reshape(-1), r1, r2])
    routing = np.zeros((n, n))
    T1, T2 = first.routing, second.routing
    e1, e2 = first.exit_probs, second.exit_probs

    def _pair(i: int, j: int) -> int:
        return i * m2 + j

    only1 = lambda i: n_pair + i  # noqa: E731 - local index helpers
    only2 = lambda j: n_pair + m1 + j  # noqa: E731

    for i in range(m1):
        for j in range(m2):
            src = _pair(i, j)
            tot = r1[i] + r2[j]
            for i2 in range(m1):
                if T1[i, i2] > 0:
                    routing[src, _pair(i2, j)] += r1[i] * T1[i, i2] / tot
            for j2 in range(m2):
                if T2[j, j2] > 0:
                    routing[src, _pair(i, j2)] += r2[j] * T2[j, j2] / tot
            # One chain absorbs; the other keeps running in its block.
            routing[src, only2(j)] += r1[i] * e1[i] / tot
            routing[src, only1(i)] += r2[j] * e2[j] / tot
    routing[n_pair : n_pair + m1, n_pair : n_pair + m1] = T1
    routing[n_pair + m1 :, n_pair + m1 :] = T2
    entry = np.concatenate([np.kron(first.entry, second.entry), np.zeros(m1 + m2)])
    return PHDistribution(entry, rates, routing)
