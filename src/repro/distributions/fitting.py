"""Moment fitting of phase-type distributions.

The paper's experiments sweep the squared coefficient of variation (C²) of
one server's service time while holding the mean fixed:

* C² < 1 → Erlangian-``m`` (paper §5.4.1),
* C² = 1 → exponential,
* C² > 1 → Hyperexponential-2 (paper §5.4.2).

§5.4.2 notes that mean + C² leave one H2 degree of freedom open and lists
the standard ways to pin it: fix ``p`` from the physical system, match the
third moment, or fit the pdf value at zero.  All three are implemented here
alongside the ubiquitous *balanced-means* rule; the choice is an explicit
``method`` argument so its effect can be studied (see the
``ablation_h2_fitting`` benchmark).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import brentq

from repro._util.validation import check_positive, check_probability
from repro.distributions.builders import erlang, exponential, hyperexponential
from repro.distributions.operations import mixture
from repro.distributions.ph import PHDistribution

__all__ = [
    "fit_erlang",
    "fit_mixed_erlang",
    "fit_h2",
    "fit_scv",
]


def fit_erlang(mean: float, scv: float) -> PHDistribution:
    """Erlang with order ``m = round(1/scv)`` and exact mean.

    The achieved C² is ``1/m``, the closest value an unmixed Erlang can
    reach; use :func:`fit_mixed_erlang` for an exact C² match.
    """
    mean = check_positive(mean, "mean")
    scv = check_positive(scv, "scv")
    if scv > 1.0 + 1e-12:
        raise ValueError(f"Erlang fits require scv <= 1, got {scv!r}")
    m = max(1, round(1.0 / scv))
    return erlang(m, m / mean)


def fit_mixed_erlang(mean: float, scv: float) -> PHDistribution:
    """Exact (mean, scv) fit for ``scv ≤ 1`` via an Erlang mixture.

    For ``1/m ≤ C² ≤ 1/(m−1)`` a probabilistic mixture of Erlang-(m−1) and
    Erlang-``m`` with a common stage rate matches both moments exactly
    (Tijms' classic construction).  Returns a plain Erlang or exponential
    when that suffices.
    """
    mean = check_positive(mean, "mean")
    scv = check_positive(scv, "scv")
    if scv > 1.0 + 1e-12:
        raise ValueError(f"mixed-Erlang fits require scv <= 1, got {scv!r}")
    if abs(scv - 1.0) < 1e-12:
        return exponential(1.0 / mean)
    m = int(np.ceil(1.0 / scv))
    if np.isclose(scv, 1.0 / m):
        return erlang(m, m / mean)
    # Solve a p² + 2m(1−a) p + (a−1)m² − m = 0 with a = scv + 1 for the
    # mixing probability p of the Erlang-(m−1) branch (derived from the
    # first two moments of the mixture with common rate µ = (m − p)/mean).
    a = scv + 1.0
    coeffs = [a, 2.0 * m * (1.0 - a), (a - 1.0) * m * m - m]
    roots = np.roots(coeffs)
    candidates = [float(r.real) for r in roots if abs(r.imag) < 1e-10 and -1e-12 <= r.real <= 1.0 + 1e-12]
    if not candidates:  # pragma: no cover - defensive
        raise RuntimeError(f"no feasible mixing probability for scv={scv!r}")
    p = min(max(candidates[0], 0.0), 1.0)
    mu = (m - p) / mean
    return mixture([(p, erlang(m - 1, mu)), (1.0 - p, erlang(m, mu))])


def fit_h2(
    mean: float,
    scv: float,
    method: str = "balanced",
    *,
    p: float | None = None,
    pdf0: float | None = None,
    moment3: float | None = None,
) -> PHDistribution:
    """Hyperexponential-2 with the given mean and C² (> 1).

    Parameters
    ----------
    method:
        ``"balanced"``
            Balanced means: each branch contributes equally to the mean
            (``p₁/µ₁ = p₂/µ₂``), the most common default in the literature.
        ``"fixed_p"``
            Branch probability ``p`` supplied by the caller ("fix the third
            parameter based on the physical system", §5.4.2).
        ``"pdf0"``
            Match the density at zero, ``f(0) = p µ₁ + (1−p) µ₂ = pdf0``.
        ``"moment3"``
            Match a third raw moment ``E[T³] = moment3``; if omitted, the
            third moment of a gamma distribution with the same mean and C²
            is used (a standard completion, e.g. Whitt 1982).
    """
    mean = check_positive(mean, "mean")
    scv = float(scv)
    if scv <= 1.0:
        raise ValueError(f"H2 fits require scv > 1, got {scv!r}")

    if method == "balanced":
        prob = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
        l1 = 2.0 * prob / mean
        l2 = 2.0 * (1.0 - prob) / mean
        return hyperexponential([prob, 1.0 - prob], [l1, l2])

    if method == "fixed_p":
        if p is None:
            raise ValueError("method='fixed_p' requires the p keyword")
        return _h2_fixed_p(mean, scv, check_probability(p, "p"))

    if method == "pdf0":
        if pdf0 is None:
            raise ValueError("method='pdf0' requires the pdf0 keyword")
        return _h2_pdf0(mean, scv, check_positive(pdf0, "pdf0"))

    if method == "moment3":
        if moment3 is None:
            # Gamma completion: for gamma, E[T³] = m³ (1 + C²)(1 + 2C²).
            moment3 = mean**3 * (1.0 + scv) * (1.0 + 2.0 * scv)
        return _h2_three_moments(mean, (scv + 1.0) * mean**2, float(moment3))

    raise ValueError(f"unknown H2 fitting method {method!r}")


def _h2_fixed_p(mean: float, scv: float, p: float) -> PHDistribution:
    """H2 with prescribed branch probability matching mean and scv.

    With ``u_i = 1/µ_i``: ``p u₁ + (1−p) u₂ = mean`` and
    ``p u₁² + (1−p) u₂² = E[T²]/2``.  Eliminating ``u₂`` gives a quadratic
    in ``u₁``; we take the root with ``u₁ > u₂ > 0`` (slow branch carries
    the tail).
    """
    if not (0.0 < p < 1.0):
        raise ValueError(f"p must be strictly inside (0, 1), got {p!r}")
    n2 = (scv + 1.0) * mean**2 / 2.0
    # u2 = (mean − p u1)/(1 − p); substitute into the second equation.
    #  p u1² + (mean − p u1)² / (1 − p) = n2
    a = p + p**2 / (1.0 - p)
    b = -2.0 * p * mean / (1.0 - p)
    c = mean**2 / (1.0 - p) - n2
    disc = b * b - 4.0 * a * c
    if disc < 0:
        raise ValueError(
            f"no real H2 with p={p!r}, mean={mean!r}, scv={scv!r} "
            "(branch probability too extreme for this C²)"
        )
    u1 = (-b + np.sqrt(disc)) / (2.0 * a)
    u2 = (mean - p * u1) / (1.0 - p)
    if u2 <= 0:
        raise ValueError(
            f"infeasible H2: p={p!r} with scv={scv!r} forces a negative branch mean"
        )
    return hyperexponential([p, 1.0 - p], [1.0 / u1, 1.0 / u2])


def _h2_pdf0(mean: float, scv: float, f0: float) -> PHDistribution:
    """H2 matching mean, scv and the density at zero.

    Solved by a one-dimensional root search over the branch probability:
    for each candidate ``p`` the (mean, scv) system is solved in closed form
    and the resulting ``f(0)`` compared with the target.
    """

    def f0_of_p(p: float) -> float:
        d = _h2_fixed_p(mean, scv, p)
        return float(d.pdf(0.0))

    lo, hi = 1e-9, 1.0 - 1e-9
    # f(0) is monotone in p along the feasible branch; bracket then solve.
    grid = np.linspace(lo, hi, 101)
    vals = []
    for g in grid:
        try:
            vals.append(f0_of_p(g) - f0)
        except ValueError:
            vals.append(np.nan)
    vals = np.asarray(vals)
    ok = ~np.isnan(vals)
    sign_change = None
    idx = np.nonzero(ok)[0]
    for i, j in zip(idx[:-1], idx[1:]):
        if vals[i] == 0.0:
            sign_change = (grid[i], grid[i])
            break
        if vals[i] * vals[j] < 0:
            sign_change = (grid[i], grid[j])
            break
    if sign_change is None:
        raise ValueError(
            f"pdf0={f0!r} is not attainable by an H2 with mean={mean!r}, scv={scv!r}"
        )
    if sign_change[0] == sign_change[1]:
        p = sign_change[0]
    else:
        p = brentq(lambda q: f0_of_p(q) - f0, *sign_change, xtol=1e-12)
    return _h2_fixed_p(mean, scv, p)


def _h2_three_moments(m1: float, m2: float, m3: float) -> PHDistribution:
    """H2 from three raw moments via the 2-atom Stieltjes construction.

    Writing ``n_k = m_k / k!`` as power moments of the branch-mean mixture,
    the branch means are the roots of ``u² − b u + c`` with
    ``b = (n₃ − n₁n₂)/(n₂ − n₁²)`` and ``c = b n₁ − n₂``.
    """
    n1, n2, n3 = m1, m2 / 2.0, m3 / 6.0
    denom = n2 - n1 * n1
    if denom <= 0:
        raise ValueError("moments imply scv <= 1; not representable as H2")
    b = (n3 - n1 * n2) / denom
    c = b * n1 - n2
    disc = b * b - 4.0 * c
    if disc <= 0:
        raise ValueError(f"infeasible H2 moment set (m1={m1}, m2={m2}, m3={m3})")
    root = np.sqrt(disc)
    u1 = (b + root) / 2.0
    u2 = (b - root) / 2.0
    if u2 <= 0:
        raise ValueError(
            f"third moment {m3!r} too large for an H2 with m1={m1!r}, m2={m2!r}"
        )
    p = (n1 - u2) / (u1 - u2)
    p = check_probability(p, "derived branch probability")
    return hyperexponential([p, 1.0 - p], [1.0 / u1, 1.0 / u2])


def fit_scv(mean: float, scv: float, h2_method: str = "balanced", **kwargs) -> PHDistribution:
    """Dispatching fit: mixed Erlang for C² < 1, exponential at 1, H2 above.

    This is the rule the experiment harness uses to turn a (mean, C²) sweep
    point into a concrete service distribution.
    """
    mean = check_positive(mean, "mean")
    scv = check_positive(scv, "scv")
    if abs(scv - 1.0) < 1e-12:
        return exponential(1.0 / mean)
    if scv < 1.0:
        return fit_mixed_erlang(mean, scv)
    return fit_h2(mean, scv, h2_method, **kwargs)
