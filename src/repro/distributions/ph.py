"""Phase-type (PH) distributions in explicit stage form.

A :class:`PHDistribution` is the Markovian subclass of
:class:`~repro.distributions.base.MatrixExponential` that the queueing core
can *embed* into a network: in addition to the ``<p, B>`` pair it exposes
the stage completion rates, the substochastic stage routing matrix and the
per-stage exit probabilities.  The relationship is

.. math::

    B = M (I - P_{ph}),

with ``M = diag(rates)`` and ``P_ph`` the stage routing.  Exit probabilities
are ``q_s = 1 - Σ_{s'} [P_ph]_{s s'}``.

Stage expansion of non-exponential servers (paper §5.4.1 / §5.4.2) is
performed automatically by the network builder from these three pieces.
"""

from __future__ import annotations

import numpy as np

from repro._util.validation import (
    check_probability_vector,
    check_substochastic,
)
from repro.distributions.base import MatrixExponential

__all__ = ["PHDistribution"]


class PHDistribution(MatrixExponential):
    """A phase-type distribution ``PH(entry, rates, routing)``.

    Parameters
    ----------
    entry:
        Probability of starting service in each stage (sums to 1; no atom
        at zero is representable).
    rates:
        Strictly positive exponential completion rate of each stage.
    routing:
        Substochastic matrix; ``routing[s, s']`` is the probability of
        moving to stage ``s'`` when stage ``s`` completes.  Row deficits are
        the exit (absorption) probabilities.  May be omitted for a pure
        mixture of exponentials (no internal routing).
    """

    def __init__(self, entry, rates, routing=None):
        entry = check_probability_vector(entry, "entry")
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 1 or rates.shape[0] != entry.shape[0]:
            raise ValueError(
                f"rates must be a vector matching entry length {entry.shape[0]}, "
                f"got shape {rates.shape}"
            )
        if np.any(rates <= 0):
            raise ValueError(f"all stage rates must be positive, got {rates!r}")
        m = rates.shape[0]
        if routing is None:
            routing = np.zeros((m, m))
        routing = check_substochastic(routing, "routing")
        if routing.shape[0] != m:
            raise ValueError(
                f"routing must be {m}x{m} to match rates, got {routing.shape}"
            )
        exit_probs = 1.0 - routing.sum(axis=1)
        # Absorption must be reachable from every stage with positive entry
        # mass, otherwise B is singular; inverting B below will catch truly
        # degenerate cases, but give a clearer error for the common one.
        if np.all(exit_probs <= 1e-12):
            raise ValueError("routing has no exit: every row sums to 1")
        self._rates = rates
        self._routing = routing
        self._exit = np.clip(exit_probs, 0.0, 1.0)
        B = np.diag(rates) @ (np.eye(m) - routing)
        super().__init__(entry, B)

    # ------------------------------------------------------------------
    # stage structure
    # ------------------------------------------------------------------
    @property
    def rates(self) -> np.ndarray:
        """Stage completion rates (copy)."""
        return self._rates.copy()

    @property
    def routing(self) -> np.ndarray:
        """Stage routing matrix ``P_ph`` (copy)."""
        return self._routing.copy()

    @property
    def exit_probs(self) -> np.ndarray:
        """Per-stage exit probabilities ``q_s`` (copy)."""
        return self._exit.copy()

    @property
    def n_stages(self) -> int:
        """Number of stages (same as :attr:`order`)."""
        return self.order

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "PHDistribution":
        """Return a copy with all times multiplied by ``factor`` (> 0)."""
        factor = float(factor)
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        return PHDistribution(self._entry, self._rates / factor, self._routing)

    def with_mean(self, mean: float) -> "PHDistribution":
        """Return a copy rescaled to the requested mean (shape preserved)."""
        mean = float(mean)
        if mean <= 0:
            raise ValueError(f"target mean must be positive, got {mean!r}")
        return self.scaled(mean / self.mean)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` iid samples by exact simulation of the stage chain.

        Vectorized over samples: each iteration advances every still-active
        sample by one stage (exponential dwell + categorical routing), so the
        loop count is the maximum number of stage visits, not ``size``.
        """
        if size < 0:
            raise ValueError(f"size must be nonnegative, got {size!r}")
        m = self.order
        total = np.zeros(size)
        # Stage index per sample; m means "absorbed".
        stage = rng.choice(m, size=size, p=self._entry)
        active = np.ones(size, dtype=bool)
        # Routing rows augmented with the exit probability as pseudo-stage m.
        full_rows = np.hstack([self._routing, self._exit[:, None]])
        cum_rows = np.cumsum(full_rows, axis=1)
        cum_rows[:, -1] = 1.0  # guard against rounding
        while np.any(active):
            idx = np.nonzero(active)[0]
            s = stage[idx]
            total[idx] += rng.exponential(1.0 / self._rates[s])
            u = rng.random(idx.shape[0])
            nxt = (u[:, None] <= cum_rows[s]).argmax(axis=1)
            stage[idx] = nxt
            active[idx] = nxt < m
        return total
