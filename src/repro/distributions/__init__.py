"""Matrix-exponential / phase-type distribution algebra.

This package implements the ``<p, B>`` machinery of LAQT (paper §3):
representations, moments, densities, the families used in the evaluation
(exponential, Erlangian, Hyperexponential, truncated power tail), moment
fitting for C² sweeps, and the PH closure operations.
"""

from repro.distributions.base import MatrixExponential
from repro.distributions.ph import PHDistribution
from repro.distributions.builders import (
    exponential,
    erlang,
    hypoexponential,
    hyperexponential,
    coxian,
)
from repro.distributions.powertail import truncated_power_tail
from repro.distributions.fitting import fit_erlang, fit_mixed_erlang, fit_h2, fit_scv
from repro.distributions.em import (
    EMResult,
    fit_erlang_ml,
    fit_hyperexponential_em,
    fit_samples,
)
from repro.distributions.operations import convolve, mixture, minimum, maximum
from repro.distributions.shapes import Shape

__all__ = [
    "MatrixExponential",
    "PHDistribution",
    "exponential",
    "erlang",
    "hypoexponential",
    "hyperexponential",
    "coxian",
    "truncated_power_tail",
    "fit_erlang",
    "fit_mixed_erlang",
    "fit_h2",
    "fit_scv",
    "EMResult",
    "fit_erlang_ml",
    "fit_hyperexponential_em",
    "fit_samples",
    "convolve",
    "mixture",
    "minimum",
    "maximum",
    "Shape",
]
