"""Matrix-exponential distributions: the LAQT ``<p, B>`` representation.

Following Lipsky's *Queueing Theory: A Linear Algebraic Approach* (and §3.2
of the reproduced paper), every service-time distribution is represented by
a vector-matrix pair ``<p, B>`` with

.. math::

    F(t) = \\Pr(X \\le t) = 1 - \\mathbf{p}\\, e^{-tB}\\, \\boldsymbol\\varepsilon,

where ``p`` is the entrance (row) vector, ``B`` is the service-rate matrix
and ``ε`` is the all-ones column vector.  The scalar functional
``Ψ[X] = p X ε`` gives moments via ``E[T^n] = n! Ψ[V^n]`` with ``V = B⁻¹``.

:class:`MatrixExponential` implements that analytic machinery for any
``<p, B>`` pair.  The Markovian subclass used throughout the library —
:class:`repro.distributions.ph.PHDistribution` — additionally carries the
stage-level structure (rates / routing / exit) needed to *embed* the
distribution in a multi-customer queueing network.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg as sla

from repro._util.validation import check_probability_vector, check_square

__all__ = ["MatrixExponential"]


class MatrixExponential:
    """A distribution given by the LAQT pair ``<p, B>``.

    Parameters
    ----------
    entry:
        Entrance probability vector ``p`` (length ``m``, sums to 1).
    B:
        Service-rate matrix (``m × m``, nonsingular).  For a Markovian (PH)
        distribution ``B = M (I - P)`` with ``M`` the diagonal matrix of
        stage completion rates and ``P`` the substochastic stage routing.

    Notes
    -----
    The constructor validates invertibility and that the resulting mean is
    positive; it does *not* require ``B`` to be Markovian, so genuinely
    matrix-exponential (non-PH) pairs are accepted.
    """

    def __init__(self, entry, B):
        self._entry = check_probability_vector(entry, "entry")
        B = check_square(B, "B")
        if B.shape[0] != self._entry.shape[0]:
            raise ValueError(
                f"entry has length {self._entry.shape[0]} but B is {B.shape[0]}x{B.shape[0]}"
            )
        self._B = B
        try:
            self._V = sla.inv(B)
        except sla.LinAlgError as exc:  # pragma: no cover - defensive
            raise ValueError("B must be nonsingular") from exc
        if self.mean <= 0:
            raise ValueError(f"<p, B> pair has non-positive mean {self.mean!r}")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Dimension ``m`` of the representation."""
        return self._entry.shape[0]

    @property
    def entry(self) -> np.ndarray:
        """Entrance vector ``p`` (copy)."""
        return self._entry.copy()

    @property
    def B(self) -> np.ndarray:
        """Service-rate matrix ``B`` (copy)."""
        return self._B.copy()

    @property
    def V(self) -> np.ndarray:
        """Service-time matrix ``V = B⁻¹`` (copy)."""
        return self._V.copy()

    def psi(self, X) -> float:
        """The LAQT scalar functional ``Ψ[X] = p X ε``."""
        X = np.asarray(X, dtype=float)
        return float(self._entry @ X @ np.ones(self.order))

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------
    def moment(self, n: int) -> float:
        """Raw moment ``E[T^n] = n! Ψ[V^n]``."""
        if n < 0 or int(n) != n:
            raise ValueError(f"moment order must be a nonnegative integer, got {n!r}")
        n = int(n)
        Vn = np.linalg.matrix_power(self._V, n)
        return float(math.factorial(n)) * self.psi(Vn)

    @property
    def mean(self) -> float:
        """First moment ``E[T]``."""
        return float(self._entry @ self._V @ np.ones(self.order))

    @property
    def variance(self) -> float:
        """Variance ``E[T²] − E[T]²``."""
        return self.moment(2) - self.mean**2

    @property
    def std(self) -> float:
        """Standard deviation."""
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``C² = Var[T] / E[T]²``."""
        return self.variance / self.mean**2

    # ------------------------------------------------------------------
    # distribution functions
    # ------------------------------------------------------------------
    def _expmB(self, t: float) -> np.ndarray:
        return sla.expm(-float(t) * self._B)

    def sf(self, t) -> np.ndarray | float:
        """Reliability function ``R(t) = Pr(X > t) = Ψ[exp(−tB)]``."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        ones = np.ones(self.order)
        out = np.array([float(self._entry @ self._expmB(ti) @ ones) for ti in t_arr])
        out = np.clip(out, 0.0, 1.0)
        return out if np.ndim(t) else float(out[0])

    def cdf(self, t) -> np.ndarray | float:
        """Probability distribution function ``F(t) = 1 − R(t)``."""
        return 1.0 - self.sf(t)

    def pdf(self, t) -> np.ndarray | float:
        """Probability density ``b(t) = Ψ[exp(−tB) B]``."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        Be = self._B @ np.ones(self.order)
        out = np.array([float(self._entry @ self._expmB(ti) @ Be) for ti in t_arr])
        out = np.clip(out, 0.0, None)
        return out if np.ndim(t) else float(out[0])

    def laplace(self, s) -> np.ndarray | float:
        """Laplace–Stieltjes transform ``E[e^{−sT}] = p (sI + B)⁻¹ B ε``."""
        s_arr = np.atleast_1d(np.asarray(s, dtype=float))
        eye = np.eye(self.order)
        ones = np.ones(self.order)
        out = np.array(
            [
                float(self._entry @ sla.solve(si * eye + self._B, self._B @ ones))
                for si in s_arr
            ]
        )
        return out if np.ndim(s) else float(out[0])

    def equilibrium(self) -> "MatrixExponential":
        """The stationary-excess (equilibrium) distribution.

        The law of the residual service time seen by a random observer,
        ``f_e(t) = R(t)/E[T]``.  Matrix-exponential form: the same ``B``
        with entrance vector ``pV / E[T]`` (since ``V`` commutes with
        ``exp(−tB)``).  Its mean is ``E[T²]/(2·E[T])`` — the inspection
        paradox in one line, used e.g. for residual epochs at steady state.
        """
        p_e = (self._entry @ self._V) / self.mean
        return MatrixExponential(p_e, self._B)

    def ppf(self, q: float, *, tol: float = 1e-10) -> float:
        """Quantile function by bisection on the CDF (scalar ``q`` in (0, 1))."""
        from scipy.optimize import brentq

        q = float(q)
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantile level must be in (0, 1), got {q!r}")
        hi = self.mean
        # Expand the bracket geometrically until it encloses the quantile.
        while self.cdf(hi) < q:
            hi *= 2.0
            if hi > 1e12 * self.mean:  # pragma: no cover - defensive
                raise RuntimeError("quantile bracket expansion failed")
        return float(brentq(lambda t: self.cdf(t) - q, 0.0, hi, xtol=tol))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(order={self.order}, mean={self.mean:.6g}, "
            f"scv={self.scv:.6g})"
        )
