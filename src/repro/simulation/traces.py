"""Workload traces: generate once, replay anywhere.

The paper's application model is a stochastic recipe; a *trace* is one
realized workload — for every task, the full sequence of station visits
with their sampled service times.  Pre-generating traces enables:

* **paired comparisons**: replay the *same* workload on two system
  configurations (different K, different data allocation, degraded mode)
  so the difference is pure system effect, not sampling noise — the
  common-random-numbers technique;
* **substituted measurements**: when real traces exist (the Leland/Ott
  style CPU logs the paper cites), load them into :class:`TaskTrace`
  objects and drive the simulator with data instead of distributions.

A trace fixes each task's service *demands*; queueing and waiting still
emerge from the replay, so different configurations legitimately produce
different makespans from identical traces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec
from repro.simulation.engine import SimulationResult

__all__ = ["TaskTrace", "generate_traces", "replay_traces"]


@dataclass(frozen=True)
class TaskTrace:
    """One task's realized activity: ``(station_index, service_time)`` steps."""

    steps: tuple[tuple[int, float], ...]

    def __post_init__(self):
        if not self.steps:
            raise ValueError("a task trace needs at least one step")
        for j, t in self.steps:
            if t <= 0:
                raise ValueError(f"service times must be positive, got {t!r}")
            if j < 0:
                raise ValueError(f"station indices must be nonnegative, got {j!r}")

    @property
    def total_demand(self) -> float:
        """Contention-free execution time of the task."""
        return float(sum(t for _, t in self.steps))

    def station_demand(self, station: int) -> float:
        """Total demand placed on one station."""
        return float(sum(t for j, t in self.steps if j == station))


def generate_traces(
    spec: NetworkSpec,
    n_tasks: int,
    rng: np.random.Generator,
) -> list[TaskTrace]:
    """Sample ``n_tasks`` activity traces from the network's recipe.

    Each task performs a random walk through ``spec.routing`` starting at
    ``spec.entry``, drawing a per-visit service time from the station's
    distribution, until it exits the network.
    """
    if n_tasks < 1 or int(n_tasks) != n_tasks:
        raise ValueError(f"n_tasks must be a positive integer, got {n_tasks!r}")
    M = spec.n_stations
    cum_route = np.cumsum(
        np.hstack([spec.routing, spec.exit[:, None]]), axis=1
    )
    cum_route[:, -1] = 1.0
    cum_entry = np.cumsum(spec.entry)
    cum_entry[-1] = 1.0
    traces = []
    for _ in range(int(n_tasks)):
        steps: list[tuple[int, float]] = []
        j = int(np.searchsorted(cum_entry, rng.random(), side="left"))
        while True:
            steps.append((j, float(spec.stations[j].dist.sample(rng, 1)[0])))
            nxt = int(np.searchsorted(cum_route[j], rng.random(), side="left"))
            if nxt >= M:
                break
            j = nxt
        traces.append(TaskTrace(steps=tuple(steps)))
    return traces


def replay_traces(
    spec: NetworkSpec,
    K: int,
    traces: list[TaskTrace],
) -> SimulationResult:
    """Deterministically replay pre-generated traces on a ``K``-station system.

    The first ``K`` tasks start at time zero; each departure admits the
    next queued task, exactly as in the stochastic engine.  The spec only
    contributes station *capacities* here (service times come from the
    traces), so the same trace list can be replayed against variant
    configurations as long as station indices line up.
    """
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    if not traces:
        raise ValueError("need at least one trace")
    N = len(traces)
    M = spec.n_stations
    for t in traces:
        for j, _ in t.steps:
            if j >= M:
                raise ValueError(
                    f"trace references station {j}, but the spec has only {M}"
                )
    servers = [np.inf if st.is_delay else int(st.servers) for st in spec.stations]
    busy = [0] * M
    queues: list[list[tuple[int, int]]] = [[] for _ in range(M)]  # (task, step)
    heap: list[tuple[float, int, int, int, int]] = []  # (t, seq, station, task, step)
    seq = 0

    def start(now: float, j: int, task: int, step: int):
        nonlocal seq
        heapq.heappush(heap, (now + traces[task].steps[step][1], seq, j, task, step))
        seq += 1

    def arrive(now: float, task: int, step: int):
        j = traces[task].steps[step][0]
        if busy[j] < servers[j]:
            busy[j] += 1
            start(now, j, task, step)
        else:
            queues[j].append((task, step))

    admitted = min(int(K), N)
    for t in range(admitted):
        arrive(0.0, t, 0)
    backlog = N - admitted
    next_task = admitted

    departures = np.empty(N)
    done = 0
    while done < N:
        now, _, j, task, step = heapq.heappop(heap)
        if queues[j]:
            q_task, q_step = queues[j].pop(0)
            start(now, j, q_task, q_step)
        else:
            busy[j] -= 1
        if step + 1 < len(traces[task].steps):
            arrive(now, task, step + 1)
        else:
            departures[done] = now
            done += 1
            if backlog > 0:
                backlog -= 1
                arrive(now, next_task, 0)
                next_task += 1
    return SimulationResult(departure_times=departures)
