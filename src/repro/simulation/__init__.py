"""Discrete-event simulation substrate (independent validation of the model)."""

from repro.simulation.engine import SimulationResult, simulate_once
from repro.simulation.replication import SimulationStudy, simulate_study
from repro.simulation.traces import TaskTrace, generate_traces, replay_traces
from repro.simulation.steady_state import SteadyStateEstimate, estimate_steady_state

__all__ = [
    "SimulationResult",
    "simulate_once",
    "SimulationStudy",
    "simulate_study",
    "TaskTrace",
    "generate_traces",
    "replay_traces",
    "SteadyStateEstimate",
    "estimate_steady_state",
]
