"""Discrete-event simulation of a finite workload on a queueing network.

The paper is purely analytical; this simulator is the reproduction's
independent ground truth.  It executes the *same* :class:`NetworkSpec` the
analytic solvers consume — ``K`` tasks admitted at time zero, a backlog of
``N − K`` tasks injected one-for-one as departures occur, FCFS queueing at
shared stations, simultaneous service at delay banks — and records every
departure instant, so epoch-by-epoch inter-departure means and makespans
can be compared directly against :class:`repro.core.TransientModel`.

Service times are drawn from the stations' PH distributions by exact
stage-chain sampling (for FCFS and delay disciplines only total service
time matters, so pre-sampling totals is exact).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec

__all__ = ["SimulationResult", "simulate_once"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    #: departure instants, sorted, length N
    departure_times: np.ndarray

    @property
    def makespan(self) -> float:
        """Completion time of the last task."""
        return float(self.departure_times[-1])

    @property
    def interdeparture_times(self) -> np.ndarray:
        """Per-epoch times (first-difference of departures)."""
        return np.diff(self.departure_times, prepend=0.0)


class _SampleBuffer:
    """Chunked PH sampling: amortizes the stage-chain loop across visits."""

    def __init__(self, dist, rng: np.random.Generator, chunk: int = 512):
        self._dist = dist
        self._rng = rng
        self._chunk = chunk
        self._buf = np.empty(0)
        self._at = 0

    def next(self) -> float:
        if self._at >= self._buf.shape[0]:
            self._buf = self._dist.sample(self._rng, self._chunk)
            self._at = 0
        v = self._buf[self._at]
        self._at += 1
        return float(v)


def simulate_once(
    spec: NetworkSpec,
    K: int,
    N: int,
    rng: np.random.Generator,
) -> SimulationResult:
    """Simulate one execution of ``N`` tasks on a ``K``-workstation system."""
    if K < 1 or int(K) != K:
        raise ValueError(f"K must be a positive integer, got {K!r}")
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    K, N = int(K), int(N)
    M = spec.n_stations
    routing = spec.routing
    exit_vec = spec.exit
    # Cumulative routing rows with the exit as final pseudo-destination M.
    cum_route = np.cumsum(np.hstack([routing, exit_vec[:, None]]), axis=1)
    cum_route[:, -1] = 1.0
    cum_entry = np.cumsum(spec.entry)
    cum_entry[-1] = 1.0

    samplers = [_SampleBuffer(st.dist, rng) for st in spec.stations]
    servers = [np.inf if st.is_delay else int(st.servers) for st in spec.stations]
    busy = [0] * M
    queues: list[list[int]] = [[] for _ in range(M)]  # FIFO, holds task ids

    heap: list[tuple[float, int, int, int]] = []  # (time, seq, station, task)
    seq = 0

    def start_service(now: float, j: int, task: int):
        nonlocal seq
        heapq.heappush(heap, (now + samplers[j].next(), seq, j, task))
        seq += 1

    def arrive(now: float, j: int, task: int):
        if busy[j] < servers[j]:
            busy[j] += 1
            start_service(now, j, task)
        else:
            queues[j].append(task)

    def inject(now: float, task: int):
        j = int(np.searchsorted(cum_entry, rng.random(), side="left"))
        arrive(now, j, task)

    admitted = min(K, N)
    for t in range(admitted):
        inject(0.0, t)
    backlog = N - admitted
    next_task = admitted

    departures = np.empty(N)
    done = 0
    while done < N:
        now, _, j, task = heapq.heappop(heap)
        # Completion at station j frees a server for the head-of-line task.
        if queues[j]:
            start_service(now, j, queues[j].pop(0))
        else:
            busy[j] -= 1
        dest = int(np.searchsorted(cum_route[j], rng.random(), side="left"))
        if dest < M:
            arrive(now, dest, task)
        else:
            departures[done] = now
            done += 1
            if backlog > 0:
                backlog -= 1
                inject(now, next_task)
                next_task += 1
    return SimulationResult(departure_times=departures)
