"""Simulation-based steady-state estimation (batch means).

A direct empirical estimate of the stationary inter-departure time from
one long backlogged run: discard a warm-up prefix, then apply the method
of batch means to the remaining epochs.  Batching absorbs the serial
correlation the analytic :mod:`repro.core.correlations` module computes
exactly, so the confidence interval is honest — which is exactly what the
tests verify by comparing the CI against the analytic ``t_ss``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec
from repro.simulation.engine import simulate_once

__all__ = ["SteadyStateEstimate", "estimate_steady_state"]


@dataclass(frozen=True)
class SteadyStateEstimate:
    """Batch-means estimate of the stationary inter-departure time."""

    mean: float
    halfwidth: float
    n_batches: int
    batch_size: int

    def ci(self) -> tuple[float, float]:
        """The confidence interval."""
        return (self.mean - self.halfwidth, self.mean + self.halfwidth)

    def contains(self, value: float) -> bool:
        lo, hi = self.ci()
        return lo <= value <= hi


def estimate_steady_state(
    spec: NetworkSpec,
    K: int,
    *,
    epochs: int = 20_000,
    warmup: int = 1_000,
    n_batches: int = 40,
    seed: int = 0,
    z: float = 2.576,
) -> SteadyStateEstimate:
    """Estimate ``t_ss`` from one long simulated run.

    The run executes ``warmup + epochs + K`` tasks so that the measured
    window is entirely backlogged (the final ``K`` draining epochs are
    excluded along with the warm-up).
    """
    if epochs < n_batches * 10:
        raise ValueError(
            f"need at least 10 epochs per batch: epochs={epochs}, "
            f"n_batches={n_batches}"
        )
    rng = np.random.default_rng(seed)
    N = warmup + epochs + int(K)
    result = simulate_once(spec, K, N, rng)
    inter = np.diff(result.departure_times)
    window = inter[warmup : warmup + epochs]
    batch_size = epochs // n_batches
    batches = window[: batch_size * n_batches].reshape(n_batches, batch_size)
    means = batches.mean(axis=1)
    halfwidth = z * means.std(ddof=1) / np.sqrt(n_batches)
    return SteadyStateEstimate(
        mean=float(means.mean()),
        halfwidth=float(halfwidth),
        n_batches=n_batches,
        batch_size=batch_size,
    )
