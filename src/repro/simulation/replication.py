"""Replicated simulation with confidence intervals.

Aggregates many independent :func:`repro.simulation.engine.simulate_once`
runs into per-epoch inter-departure means and a makespan estimate with a
normal-approximation confidence interval, ready to compare against the
exact transient model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.network.spec import NetworkSpec
from repro.obs import runtime as _rt
from repro.simulation.engine import simulate_once

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.budget import Budget

__all__ = ["SimulationStudy", "simulate_study"]


@dataclass(frozen=True)
class SimulationStudy:
    """Replicated-run estimates."""

    #: per-replication departure instants, shape (reps, N)
    departures: np.ndarray
    #: z-multiplier used for the reported half-widths
    z: float

    @property
    def reps(self) -> int:
        return self.departures.shape[0]

    @property
    def epoch_means(self) -> np.ndarray:
        """Mean inter-departure time of each epoch."""
        inter = np.diff(self.departures, axis=1, prepend=0.0)
        return inter.mean(axis=0)

    @property
    def epoch_halfwidths(self) -> np.ndarray:
        """CI half-width per epoch mean."""
        inter = np.diff(self.departures, axis=1, prepend=0.0)
        return self.z * inter.std(axis=0, ddof=1) / np.sqrt(self.reps)

    @property
    def makespan_mean(self) -> float:
        """Mean makespan across replications."""
        return float(self.departures[:, -1].mean())

    @property
    def makespan_halfwidth(self) -> float:
        """CI half-width of the makespan mean."""
        return float(
            self.z * self.departures[:, -1].std(ddof=1) / np.sqrt(self.reps)
        )

    def makespan_ci(self) -> tuple[float, float]:
        """Confidence interval for the mean makespan."""
        m, h = self.makespan_mean, self.makespan_halfwidth
        return (m - h, m + h)


def simulate_study(
    spec: NetworkSpec,
    K: int,
    N: int,
    reps: int = 200,
    *,
    seed: int = 0,
    z: float = 2.576,
    budget: "Budget | None" = None,
) -> SimulationStudy:
    """Run ``reps`` independent replications (default CI level ≈ 99%).

    Parameters
    ----------
    budget:
        Optional :class:`~repro.resilience.budget.Budget`; its wall-clock
        cap is checked between replications (raising
        :class:`~repro.resilience.errors.BudgetExceededError`), and every
        replication's departure times are screened for non-finite values
        so a broken sampler surfaces as a structured
        :class:`~repro.resilience.errors.NumericalHealthError` instead of
        NaN confidence intervals.
    """
    if reps < 2:
        raise ValueError(f"need at least 2 replications for a CI, got {reps!r}")
    clock = None
    if budget is not None:
        clock = budget.start_clock()
    rng = np.random.default_rng(seed)
    departures = np.empty((reps, int(N)))
    ins = _rt.ACTIVE
    for r in range(reps):
        if clock is not None:
            clock.check(f"simulation replication {r}")
        if ins is None:
            departures[r] = simulate_once(spec, K, N, rng).departure_times
        else:
            with ins.span("simulate_replication", rep=r, K=int(K),
                          N=int(N)) as span:
                departures[r] = simulate_once(spec, K, N, rng).departure_times
            ins.count("repro_replications_total")
            if span is not None and span.wall is not None:
                ins.observe("repro_replication_seconds", span.wall)
        if budget is not None and not np.all(np.isfinite(departures[r])):
            from repro.resilience.errors import NumericalHealthError

            raise NumericalHealthError(
                f"simulation replication {r} produced non-finite departure "
                "times",
                where="simulate_study",
                value=float(r),
            )
    return SimulationStudy(departures=departures, z=float(z))
