"""Command-line interface.

::

    python -m repro make-spec central --rdisk-scv 10 -o cluster.json
    python -m repro describe cluster.json -K 5
    python -m repro report cluster.json --workstations 5 --tasks 30
    python -m repro validate cluster.json --workstations 5 --tasks 20
    python -m repro experiment fig03 --plot
    python -m repro experiment fig03 --shard-dir /shared/run --workers 4
    python -m repro sweep-worker fig03 --shard-dir /shared/run
    python -m repro profile cluster.json -K 5 -N 30
    python -m repro serve --port 8278 --max-inflight 8 --queue-depth 32
    python -m repro status --serve http://127.0.0.1:8278

Specs travel as JSON (see :mod:`repro.network.serialize`), so an analysis
is fully reproducible from the file plus the command line.  ``report``,
``validate``, ``experiment`` and ``profile`` accept ``--trace`` /
``--metrics-out`` to archive the run's span tree (JSONL) and metrics
(Prometheus text) — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path


def _load_spec(path: str):
    from repro.network import spec_from_json

    return spec_from_json(Path(path).read_text())


def _add_obs_args(sub) -> None:
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write the run's span tree as JSONL")
    sub.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the run's metrics in Prometheus text format")


@contextmanager
def _maybe_instrument(args):
    """Activate instrumentation when --trace/--metrics-out was given.

    Artifacts are flushed on exit even when the command fails, so a
    crashed run still leaves its partial trace behind.
    """
    trace = getattr(args, "trace", None)
    metrics_out = getattr(args, "metrics_out", None)
    if not trace and not metrics_out:
        yield None
        return
    from repro.obs import Instrumentation

    ins = Instrumentation.enabled()
    try:
        with ins.activate():
            yield ins
    finally:
        if trace:
            Path(trace).write_text(ins.tracer.to_jsonl() + "\n")
            print(f"wrote {trace}", file=sys.stderr)
        if metrics_out:
            Path(metrics_out).write_text(ins.metrics.to_prometheus())
            print(f"wrote {metrics_out}", file=sys.stderr)


def _cmd_make_spec(args) -> int:
    from repro.clusters import ApplicationModel, central_cluster, distributed_cluster
    from repro.distributions import Shape
    from repro.network import spec_to_json

    app = ApplicationModel(
        compute_fraction=args.compute_fraction,
        local_time=args.local_time,
        remote_time=args.remote_time,
        comm_factor=args.comm_factor,
        cycles=args.cycles,
        remote_fraction=args.remote_fraction,
    )
    shapes = {}
    if args.rdisk_scv != 1.0:
        key = "rdisk" if args.kind == "central" else "disk"
        shapes[key] = Shape.scv(args.rdisk_scv)
    if args.cpu_scv != 1.0:
        shapes["cpu"] = Shape.scv(args.cpu_scv)
    if args.kind == "central":
        spec = central_cluster(app, shapes)
    else:
        spec = distributed_cluster(app, args.workstations, shapes=shapes)
    text = spec_to_json(spec)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_describe(args) -> int:
    spec = _load_spec(args.spec)
    print(spec.describe())
    if args.workstations is not None:
        from repro.core.transient import TransientModel

        model = TransientModel(spec, args.workstations)
        print()
        print(f"state-space size per level (K={args.workstations}):")
        print(f"{'k':>4}  {'D(k)':>12}")
        dims = [model.level_dim(k) for k in range(args.workstations + 1)]
        for k, d in enumerate(dims):
            print(f"{k:>4}  {d:>12}")
        print(f"{'sum':>4}  {sum(dims):>12}")
    return 0


def _resilience_config(args):
    """Build a ResilienceConfig from the shared --robust CLI knobs."""
    from repro.resilience.budget import Budget
    from repro.resilience.fallback import ResilienceConfig

    return ResilienceConfig(
        budget=Budget(
            max_states=args.max_states,
            max_bytes=args.max_bytes,
            max_seconds=args.max_seconds,
            max_epochs=args.max_epochs,
        ),
        propagation=getattr(args, "propagation", None) or "propagator",
    )


def _add_robust_args(sub) -> None:
    sub.add_argument("--robust", action="store_true",
                     help="run through the resilience layer (guards, "
                          "budgets, degradation ladder) and print the "
                          "solver report")
    sub.add_argument("--max-states", type=int, default=None,
                     help="per-level state-space cap (robust mode)")
    sub.add_argument("--max-bytes", type=int, default=None,
                     help="predicted operator/LU memory cap (robust mode)")
    sub.add_argument("--max-seconds", type=float, default=None,
                     help="wall-clock budget for the solve (robust mode)")
    sub.add_argument("--max-epochs", type=int, default=None,
                     help="exactly-iterated epoch cap; larger workloads "
                          "degrade to the O(K) approximation (robust mode)")
    sub.add_argument("--propagation",
                     choices=("propagator", "solve", "spectral"),
                     default=None,
                     help="epoch-propagation backend: 'propagator' "
                          "(default; cached-gemv), 'solve' (historical "
                          "bit-exact path), 'spectral' (closed-form "
                          "eigendecomposition — refill cost independent "
                          "of N, auto-downgrades with a reason code when "
                          "ill-conditioned)")


def _cmd_report(args) -> int:
    with _maybe_instrument(args):
        return _run_report(args)


def _run_report(args) -> int:
    from repro.reporting import performance_report

    spec = _load_spec(args.spec)
    if args.robust:
        from repro.resilience.errors import SolverError
        from repro.resilience.fallback import solve_resilient

        try:
            result = solve_resilient(
                spec, args.workstations, args.tasks, _resilience_config(args)
            )
        except SolverError as exc:
            print(f"FAIL: {exc.reason}: {exc}")
            return 2
        rep = result.report
        print(f"solver: {rep.summary()}")
        for attempt in rep.attempts:
            print(f"  {attempt}")
        if rep.degraded:
            # The full report machinery assumes an exact solve; print the
            # degraded answer with its honest label instead.
            print(f"mean makespan E(T) [{rep.method}]: {result.makespan:.4f}")
            return 0
    print(
        performance_report(
            spec,
            args.workstations,
            args.tasks,
            include_distribution=not args.no_distribution,
        )
    )
    return 0


def _cmd_validate(args) -> int:
    with _maybe_instrument(args):
        return _run_validate(args)


def _run_validate(args) -> int:
    from repro.validation import cross_validate

    kwargs = {}
    if args.robust:
        kwargs["resilience"] = _resilience_config(args)
    from repro.resilience.errors import SolverError

    try:
        report = cross_validate(
            _load_spec(args.spec),
            args.workstations,
            args.tasks,
            reps=args.reps,
            seed=args.seed,
            **kwargs,
        )
    except SolverError as exc:
        # Solver (or budgeted simulation) failed outright: scriptable
        # nonzero exit with a one-line reason.
        print(f"REASON: {exc.reason}: {exc}")
        return 2
    print(report.summary())
    if report.healthy:
        return 0
    print(f"REASON: {report.failure_reason()}")
    return 2 if report.degraded else 1


def _experiment_argv(args) -> list:
    """Forward the shared sweep/shard flags to the experiments CLI."""
    argv = [args.name]
    if getattr(args, "plot", False):
        argv.append("--plot")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.timeout is not None:
        argv += ["--timeout", str(args.timeout)]
    if args.retries is not None:
        argv += ["--retries", str(args.retries)]
    if args.checkpoint_dir:
        argv += ["--checkpoint-dir", args.checkpoint_dir]
    if args.resume:
        argv.append("--resume")
    if args.drill:
        argv += ["--drill", args.drill]
    if args.shard_dir:
        argv += ["--shard-dir", args.shard_dir]
    if args.worker_id:
        argv += ["--worker-id", args.worker_id]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.lease_ttl is not None:
        argv += ["--lease-ttl", str(args.lease_ttl)]
    if args.report_json:
        argv += ["--report-json", args.report_json]
    if getattr(args, "propagation", None):
        argv += ["--propagation", args.propagation]
    if args.checkpoint_gc:
        argv.append("--checkpoint-gc")
    if args.trace:
        argv += ["--trace", args.trace]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    return argv


def _cmd_experiment(args) -> int:
    from repro.experiments.__main__ import main as exp_main

    return exp_main(_experiment_argv(args))


def _cmd_sweep_worker(args) -> int:
    """One worker process of a distributed sweep (see docs/ROBUSTNESS.md).

    Thin delegation to the experiments CLI with ``--shard-dir`` required:
    the worker claims points via leases, heartbeats, steals from dead
    peers, and exits with the usual 0/1/2 sweep verdict.
    """
    from repro.experiments.__main__ import main as exp_main

    if not args.shard_dir and not args.checkpoint_gc:
        print("sweep-worker requires --shard-dir (the shared namespace "
              "directory)", file=sys.stderr)
        return 2
    return exp_main(_experiment_argv(args))


def _format_serve_status(doc: dict) -> str:
    """One console block from a daemon's ``/status`` document."""
    adm = doc.get("admission", {})
    cache = doc.get("cache", {})
    lines = [
        f"repro serve status  (schema {doc.get('schema', '?')})",
        f"  ready: {doc.get('ready')}   uptime: "
        f"{doc.get('uptime_seconds', 0):.1f}s   requests: "
        f"{doc.get('requests', 0)}",
        f"  admission: {adm.get('inflight', 0)}/{adm.get('max_inflight', '?')}"
        f" in flight, {adm.get('queued', 0)}/{adm.get('queue_depth', '?')} "
        f"queued (peak {adm.get('max_queue_seen', 0)})",
        f"  admitted: {adm.get('admitted', 0)}   shed: "
        f"{adm.get('shed_total', 0)} {adm.get('shed', {})}   abandoned: "
        f"{adm.get('abandoned', 0)}",
        f"  brownout: {'ON' if adm.get('brownout') else 'off'} "
        f"(watermark {adm.get('brownout_watermark')}, "
        f"{adm.get('brownout_solves', 0)} degraded solves, "
        f"{adm.get('brownout_seconds', 0.0):.1f}s total)   "
        f"downtiered: {adm.get('downtiered', 0)}",
        f"  cache: {cache.get('count', 0)} models, "
        f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses",
    ]
    if doc.get("faults"):
        lines.append(f"  faults armed: {doc['faults']}")
    if adm.get("draining"):
        lines.append("  DRAINING (readyz → 503)")
    return "\n".join(lines)


def _serve_status(args) -> int:
    """`repro status --serve URL`: one daemon's admission/overload view."""
    import json as _json
    import time as _time
    from urllib.parse import urlsplit

    from repro.serve.client import ServeClient

    raw = args.serve if "//" in args.serve else f"http://{args.serve}"
    parts = urlsplit(raw)
    host, port = parts.hostname or "127.0.0.1", parts.port or 8278

    def render() -> dict:
        with ServeClient(host, port) as client:
            doc = client.status()
        if args.json:
            print(_json.dumps(doc, sort_keys=True))
        else:
            print(_format_serve_status(doc))
        return doc

    try:
        if args.watch is None:
            return 0 if render().get("ready") else 1
        while True:
            render()
            _time.sleep(args.watch)
            if not args.json:
                print()
    except KeyboardInterrupt:
        return 0
    except (OSError, RuntimeError) as exc:
        print(f"repro status: {raw} unreachable: {exc}", file=sys.stderr)
        return 2


def _cmd_status(args) -> int:
    """Live fleet console over a shard namespace's telemetry streams."""
    import json as _json
    import time as _time

    if bool(args.shard_dir) == bool(args.serve):
        print("status requires exactly one of --shard-dir DIR (fleet "
              "console) or --serve URL (daemon admission stats)",
              file=sys.stderr)
        return 2
    if args.serve:
        return _serve_status(args)

    from repro.obs.fleet import FleetView

    def render() -> FleetView:
        fleet = FleetView.load(
            args.shard_dir, figure=args.figure, stale_after=args.stale_after
        )
        if args.json:
            print(_json.dumps(fleet.to_dict(), sort_keys=True))
        else:
            print(fleet.format_console())
        return fleet

    if args.watch is None:
        fleet = render()
        return 0 if fleet.workers else 2
    try:
        while True:
            fleet = render()
            doc = fleet.to_dict()
            if fleet.workers and doc["fleet"]["total"] and \
                    doc["fleet"]["done"] >= doc["fleet"]["total"]:
                return 0
            _time.sleep(args.watch)
            if not args.json:
                print()
    except KeyboardInterrupt:
        return 0


def _profile_fleet(args) -> int:
    """`repro profile --merge-telemetry`: fleet trace merge + coverage gate."""
    from repro.obs.fleet import FleetView

    fleet = FleetView.load(args.merge_telemetry, figure=args.name)
    tracer = fleet.merged_tracer()
    if not tracer.spans:
        print(f"no telemetry spans under {args.merge_telemetry} "
              "(fleet ran uninstrumented?)", file=sys.stderr)
        return 2
    totals = tracer.stage_totals()
    print(f"{'stage':<24} {'count':>7} {'wall s':>10} {'self s':>10}")
    for name, agg in sorted(totals.items(), key=lambda kv: -kv[1]["self"]):
        print(f"{name:<24} {int(agg['count']):>7} "
              f"{agg['wall']:>10.4f} {agg['self']:>10.4f}")
    lat = fleet.latency()
    if lat is not None:
        print(f"point latency: p50 {lat['p50'] * 1e3:.2f}ms  "
              f"p95 {lat['p95'] * 1e3:.2f}ms  p99 {lat['p99'] * 1e3:.2f}ms  "
              f"(n={int(lat['count'])})")
    if args.trace:
        Path(args.trace).write_text(tracer.to_jsonl() + "\n")
        print(f"wrote {args.trace}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            fleet.merged_metrics().to_prometheus()
        )
        print(f"wrote {args.metrics_out}")
    cov = fleet.coverage()
    if cov is None:
        print("fleet span coverage: unknown (no busy time recorded)")
        return 0
    print(f"fleet span coverage: {cov:.1%}")
    if cov < 0.95:
        print(f"WARNING: fleet span coverage {cov:.1%} below 95% of "
              "busy wall", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_spec, write_bench

    if args.merge_telemetry:
        return _profile_fleet(args)
    if not args.spec or args.workstations is None or args.tasks is None:
        print("profile requires a spec plus -K/-N "
              "(or --merge-telemetry DIR)", file=sys.stderr)
        return 2
    spec = _load_spec(args.spec)
    resilience = _resilience_config(args) if args.robust else None
    name = args.name or Path(args.spec).stem
    result = profile_spec(
        spec,
        args.workstations,
        args.tasks,
        repeats=args.repeats,
        name=name,
        resilience=resilience,
        propagation=getattr(args, "propagation", None) or "propagator",
    )
    print(result.format_table())
    for path in result.write_artifacts(
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        metrics_json_path=args.metrics_json,
        report_json_path=args.report_json,
    ):
        print(f"wrote {path}")
    bench = write_bench(args.bench_out, [result.bench_record()],
                        source="repro profile")
    print(f"wrote {bench}")
    if result.coverage < 0.95:
        print(f"WARNING: span coverage {result.coverage:.1%} below 95% "
              "of end-to-end wall", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.resilience.faults import ServeFaultPlan
    from repro.serve.admission import AdmissionConfig
    from repro.serve.daemon import run_daemon

    try:
        drill = ServeFaultPlan.parse(args.drill) if args.drill else None
        admission = AdmissionConfig(
            max_inflight=(args.max_inflight if args.max_inflight is not None
                          else max(1, args.threads)),
            queue_depth=args.queue_depth,
            queue_deadline=args.queue_deadline,
            brownout_watermark=args.brownout_watermark,
            max_query_states=args.admit_max_states,
            max_query_bytes=args.admit_max_bytes,
            retry_after=args.retry_after,
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    return run_daemon(
        args.host,
        args.port,
        cache_bytes=args.cache_bytes,
        threads=args.threads,
        deadline=args.deadline,
        shard_dir=args.shard_dir,
        port_file=args.port_file,
        pid_file=args.pid_file,
        admission=admission,
        drill=drill,
        drill_endpoint=args.drill_endpoint,
        drain_grace=args.drain_grace,
        keepalive_requests=args.keepalive_requests,
        keepalive_idle=args.keepalive_idle,
        metrics_out=args.metrics_out,
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Transient finite-workload analysis of cluster systems.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    mk = sub.add_parser("make-spec", help="build a cluster spec JSON")
    mk.add_argument("kind", choices=["central", "distributed"])
    mk.add_argument("--workstations", "-K", type=int, default=5,
                    help="workstation count (distributed topology only)")
    mk.add_argument("--compute-fraction", type=float, default=0.5)
    mk.add_argument("--local-time", type=float, default=8.0)
    mk.add_argument("--remote-time", type=float, default=3.0)
    mk.add_argument("--comm-factor", type=float, default=1.0 / 3.0)
    mk.add_argument("--cycles", type=float, default=10.0)
    mk.add_argument("--remote-fraction", type=float, default=0.4)
    mk.add_argument("--rdisk-scv", type=float, default=1.0,
                    help="C² of the shared storage service time")
    mk.add_argument("--cpu-scv", type=float, default=1.0)
    mk.add_argument("--output", "-o", default=None)
    mk.set_defaults(func=_cmd_make_spec)

    de = sub.add_parser("describe", help="summarize a spec JSON")
    de.add_argument("spec")
    de.add_argument("--workstations", "-K", type=int, default=None,
                    help="also print the per-level state-space table D(k)")
    de.set_defaults(func=_cmd_describe)

    rp = sub.add_parser("report", help="full performance report")
    rp.add_argument("spec")
    rp.add_argument("--workstations", "-K", type=int, required=True)
    rp.add_argument("--tasks", "-N", type=int, required=True)
    rp.add_argument("--no-distribution", action="store_true",
                    help="skip makespan variance/quantiles (faster)")
    _add_robust_args(rp)
    _add_obs_args(rp)
    rp.set_defaults(func=_cmd_report)

    va = sub.add_parser("validate", help="cross-check model vs simulation")
    va.add_argument("spec")
    va.add_argument("--workstations", "-K", type=int, required=True)
    va.add_argument("--tasks", "-N", type=int, required=True)
    va.add_argument("--reps", type=int, default=2000)
    va.add_argument("--seed", type=int, default=0)
    _add_robust_args(va)
    _add_obs_args(va)
    va.set_defaults(func=_cmd_validate)

    ex = sub.add_parser("experiment", help="regenerate a paper figure")
    ex.add_argument("name")
    ex.add_argument("--plot", action="store_true")
    # Shared sweep-supervision flags (--jobs with real validation,
    # --timeout/--retries/--checkpoint-dir/--resume/--drill) — one
    # definition for both CLIs, so `--jobs 0` is a parser error here too.
    from repro.experiments._cli import add_sweep_args

    add_sweep_args(ex)
    _add_obs_args(ex)
    ex.set_defaults(func=_cmd_experiment)

    sw = sub.add_parser(
        "sweep-worker",
        help="join a distributed sweep as one worker process "
             "(lease-claimed points over a shared --shard-dir)",
    )
    sw.add_argument("name", help="figure to sweep (or 'all')")
    add_sweep_args(sw)
    _add_obs_args(sw)
    sw.set_defaults(func=_cmd_sweep_worker)

    st = sub.add_parser(
        "status",
        help="live fleet console: per-worker progress, leases, steals, "
             "throughput, ETA and latency percentiles from a shard "
             "namespace's telemetry streams",
    )
    st.add_argument("--shard-dir", metavar="DIR", default=None,
                    help="the shared shard namespace directory")
    st.add_argument("--serve", metavar="URL", default=None,
                    help="instead of a fleet, show a serve daemon's "
                         "admission/overload stats from GET /status "
                         "(e.g. http://127.0.0.1:8278)")
    st.add_argument("--figure", default=None,
                    help="only show workers sweeping this figure")
    st.add_argument("--json", action="store_true",
                    help="emit one status JSON document "
                         "(repro-fleet-status/1 or repro-serve-status/2)")
    st.add_argument("--watch", nargs="?", type=float, const=2.0,
                    default=None, metavar="SECS",
                    help="re-render every SECS (default 2) until the "
                         "sweep completes or Ctrl-C")
    st.add_argument("--stale-after", type=float, default=10.0,
                    help="seconds without telemetry before a worker "
                         "counts as stalled (default 10)")
    st.set_defaults(func=_cmd_status)

    pf = sub.add_parser(
        "profile",
        help="instrumented solve: per-stage cost table + trace/metrics/"
             "BENCH artifacts",
    )
    pf.add_argument("spec", nargs="?", default=None)
    pf.add_argument("--workstations", "-K", type=int, default=None)
    pf.add_argument("--tasks", "-N", type=int, default=None)
    pf.add_argument("--merge-telemetry", metavar="DIR", default=None,
                    help="instead of solving, merge a shard namespace's "
                         "worker telemetry into one wall-clock-aligned "
                         "fleet trace (stage table, latency percentiles, "
                         "span-coverage gate); --name filters the figure, "
                         "--trace/--metrics-out write the merged artifacts")
    pf.add_argument("--repeats", type=int, default=5,
                    help="cold solves to time (median is reported)")
    pf.add_argument("--name", default=None,
                    help="workload name in BENCH_transient.json "
                         "(default: spec file stem)")
    pf.add_argument("--trace", metavar="PATH", default="profile.trace.jsonl")
    pf.add_argument("--metrics-out", metavar="PATH",
                    default="profile.metrics.prom")
    pf.add_argument("--metrics-json", metavar="PATH", default=None,
                    help="also write the metrics as JSON")
    pf.add_argument("--report-json", metavar="PATH", default=None,
                    help="also write the run's sweep reports (per-point "
                         "status/attempts) as JSON next to trace/metrics")
    pf.add_argument("--bench-out", metavar="PATH",
                    default="BENCH_transient.json")
    _add_robust_args(pf)
    pf.set_defaults(func=_cmd_profile)

    from repro.serve.cache import DEFAULT_CACHE_BYTES

    sv = sub.add_parser(
        "serve",
        help="solver-as-a-service HTTP daemon: solve/solve_many over a "
             "content-addressed warm-model cache, plus status and "
             "Prometheus metrics",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8278,
                    help="listen port (0 = pick a free one; see "
                         "--port-file)")
    sv.add_argument("--port-file", metavar="PATH", default=None,
                    help="write the bound port here once listening "
                         "(for --port 0 and test harnesses)")
    sv.add_argument("--pid-file", metavar="PATH", default=None,
                    help="write the daemon's PID here once listening "
                         "(for clean-shutdown supervision)")
    sv.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES,
                    help="model-cache byte budget before LRU eviction "
                         f"(default {DEFAULT_CACHE_BYTES >> 20} MiB)")
    sv.add_argument("--threads", type=int, default=4,
                    help="solver thread-pool width (default 4)")
    sv.add_argument("--deadline", type=float, default=None,
                    help="default per-request deadline in seconds "
                         "(requests may set their own; exceeded → 504)")
    sv.add_argument("--shard-dir", metavar="DIR", default=None,
                    help="also surface this shard namespace's fleet "
                         "document under /status")
    # -- overload control (docs/ROBUSTNESS.md) -------------------------
    sv.add_argument("--max-inflight", type=int, default=None,
                    help="solves admitted to the pool at once "
                         "(default: --threads)")
    sv.add_argument("--queue-depth", type=int, default=16,
                    help="bounded admission wait queue; arrivals past it "
                         "are shed with 429 (default 16)")
    sv.add_argument("--queue-deadline", type=float, default=2.0,
                    help="longest a request may wait for a slot before "
                         "being shed with 503 (default 2s)")
    sv.add_argument("--brownout-watermark", type=int, default=None,
                    help="queue depth past which makespan solves brown "
                         "out onto the cheap ladder rungs (203 answers); "
                         "default: brownout disabled")
    sv.add_argument("--admit-max-states", type=int, default=None,
                    help="reject (or down-tier) specs whose predicted "
                         "peak level dimension D_RP(k) exceeds this")
    sv.add_argument("--admit-max-bytes", type=int, default=None,
                    help="reject (or down-tier) specs whose predicted "
                         "operator + LU bytes exceed this")
    sv.add_argument("--retry-after", type=float, default=1.0,
                    help="Retry-After hint (seconds) on shed responses "
                         "(default 1)")
    sv.add_argument("--drain-grace", type=float, default=5.0,
                    help="seconds SIGTERM waits for in-flight solves "
                         "before hard exit (default 5)")
    sv.add_argument("--keepalive-requests", type=int, default=100,
                    help="requests served per connection before close "
                         "(default 100)")
    sv.add_argument("--keepalive-idle", type=float, default=5.0,
                    help="idle seconds before a kept-alive connection "
                         "closes (default 5)")
    sv.add_argument("--metrics-out", metavar="PATH", default=None,
                    help="flush final Prometheus metrics here on drain")
    sv.add_argument("--drill", metavar="SPEC", default=None,
                    help="arm a service-fault plan at startup, e.g. "
                         "'slow-solve@0.3,error-burst@10' (drills only)")
    sv.add_argument("--drill-endpoint", action="store_true",
                    help="enable POST /drill to swap the fault plan at "
                         "runtime (drills only; off by default)")
    sv.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
