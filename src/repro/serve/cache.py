"""Content-addressed LRU cache of built :class:`TransientModel`\\ s.

A model is addressed by a SHA-256 over the canonical rendering of
``(spec, K, assembly, propagation, package version)`` — the same
host-independent scheme :func:`repro.experiments.journal.fingerprint_point`
uses for sweep checkpoints (floats by IEEE-754 hex, dataclasses by sorted
fields, no ``repr`` ambiguity, no hash randomization).  Two processes on
two machines therefore compute the same key for the same question, and a
changed parameter or package upgrade *misses* instead of silently reusing
a stale model.

The cache holds the models themselves — factorized levels, cached
``Y_k``/``Y_K R_K`` propagators, spectral decompositions, entrance
vectors — so a warm hit skips straight to the epoch recurrence.  Eviction
is by resident **bytes**, not entry count: every entry is re-measured
through the solver's own cache-extraction surface
(:meth:`~repro.core.transient.TransientModel.cached_bytes`) as it warms,
mirroring how ``dense_threshold`` caps a single propagator.  Least
recently used entries go first; the entry just used is never evicted, so
one oversized model still works (it just pins the budget until the next
insert).

Thread safety: lookups and LRU bookkeeping run under one lock, and a
per-fingerprint build latch guarantees racing callers share a **single**
build — the losers block on the latch and receive the winner's model
object (pinned in ``tests/serve/test_cache.py``).  Hit/miss/eviction
counts flow to ``repro_cache_{hits,misses,evictions}_total`` and the
``cache_hit``/``cache_build`` spans through the ambient instrumentation
(metrics are thread-safe; a tracer should only be armed for
single-threaded use, which is why ``repro serve`` runs metrics-only).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.transient import TransientModel
from repro.experiments.journal import canonical_value
from repro.network.serialize import spec_to_dict
from repro.network.spec import NetworkSpec
from repro.obs import runtime as _rt

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "ModelCache",
    "ambient_cache",
    "model_fingerprint",
]

#: Fingerprint schema tag (bump on incompatible key-derivation changes).
MODEL_SCHEMA = "repro-model-cache/1"

#: Default byte budget: room for a handful of warm paper-scale models
#: (a fig04-class model holds a few MB of operators and propagators),
#: sized like the propagator dense cap — generous for answers, bounded
#: for a long-lived daemon.
DEFAULT_CACHE_BYTES = 256 << 20


def model_fingerprint(
    spec: NetworkSpec,
    K: int,
    *,
    assembly: str = "vectorized",
    propagation: str = "propagator",
    version: str | None = None,
) -> str:
    """Stable SHA-256 key of one model: (spec, K, backends, version).

    The spec is serialized through :func:`spec_to_dict` (the wire format)
    and canonicalized by the journal's renderer, so the fingerprint is
    identical across processes, machines and whether the spec arrived as
    a Python object or JSON.  ``version`` defaults to the installed
    package version — an upgrade invalidates every key by construction.
    """
    if version is None:
        from repro import __version__ as version
    payload = json.dumps(
        [MODEL_SCHEMA, version, canonical_value(spec_to_dict(spec)),
         int(K), assembly, propagation],
        separators=(",", ":"), sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class _Entry:
    """One resident model plus its accounting."""

    model: TransientModel
    fingerprint: str
    bytes: int = 0
    hits: int = 0
    build_seconds: float = 0.0


@dataclass
class _Build:
    """Latch shared by callers racing on one fingerprint."""

    done: threading.Event = field(default_factory=threading.Event)
    model: TransientModel | None = None
    error: BaseException | None = None


class ModelCache:
    """Thread-safe content-addressed LRU of warm transient models."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._building: dict[str, _Build] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._build_seconds = 0.0

    # ------------------------------------------------------------------
    def get_or_build(
        self,
        spec: NetworkSpec,
        K: int,
        *,
        assembly: str = "vectorized",
        propagation: str = "propagator",
        fingerprint: str | None = None,
    ) -> TransientModel:
        """The cached model for ``(spec, K, backends)``, building on miss.

        Raced misses on one fingerprint build **once**: the first caller
        constructs the model while the rest block on a latch and return
        the same object.  A build failure is re-raised in every waiter
        and nothing is inserted.  ``fingerprint`` short-circuits the key
        derivation when the caller already computed it.
        """
        fp = fingerprint or model_fingerprint(
            spec, K, assembly=assembly, propagation=propagation
        )
        while True:
            with self._lock:
                entry = self._entries.get(fp)
                if entry is not None:
                    self._entries.move_to_end(fp)
                    entry.hits += 1
                    self._hits += 1
                    self._note_hit(entry)
                    return entry.model
                pending = self._building.get(fp)
                if pending is None:
                    pending = self._building[fp] = _Build()
                    builder = True
                else:
                    builder = False
            if not builder:
                pending.done.wait()
                if pending.error is not None:
                    raise pending.error
                if pending.model is not None:
                    return pending.model
                continue  # pragma: no cover - latch settled without result
            return self._build(fp, spec, K, assembly, propagation, pending)

    def _build(
        self,
        fp: str,
        spec: NetworkSpec,
        K: int,
        assembly: str,
        propagation: str,
        pending: _Build,
    ) -> TransientModel:
        import time

        ins = _rt.ACTIVE
        try:
            t0 = time.perf_counter()
            if ins is None:
                model = TransientModel(
                    spec, K, assembly=assembly, propagation=propagation
                )
            else:
                with ins.span("cache_build", fingerprint=fp[:12], K=int(K)):
                    model = TransientModel(
                        spec, K, assembly=assembly, propagation=propagation
                    )
            seconds = time.perf_counter() - t0
        except BaseException as exc:
            with self._lock:
                pending.error = exc
                del self._building[fp]
            pending.done.set()
            raise
        entry = _Entry(model=model, fingerprint=fp,
                       bytes=model.cached_bytes(), build_seconds=seconds)
        with self._lock:
            self._entries[fp] = entry
            self._entries.move_to_end(fp)
            self._misses += 1
            self._build_seconds += seconds
            pending.model = model
            del self._building[fp]
            evicted = self._evict_over_budget()
        pending.done.set()
        if ins is not None:
            ins.count("repro_cache_misses_total")
            for _ in range(evicted):
                ins.count("repro_cache_evictions_total")
            self._export_gauges(ins)
        return model

    def _note_hit(self, entry: _Entry) -> None:
        """Hit-path instrumentation (called under the lock; metric
        families carry their own locks, so this cannot deadlock)."""
        ins = _rt.ACTIVE
        if ins is None:
            return
        ins.count("repro_cache_hits_total")
        with ins.span("cache_hit", fingerprint=entry.fingerprint[:12],
                      hits=entry.hits):
            pass

    # ------------------------------------------------------------------
    def settle(self, fingerprint: str) -> None:
        """Re-measure one entry after use and enforce the byte budget.

        A model's resident bytes grow as queries warm its lazy surfaces
        (LU factors, propagators, spectral decompositions); callers that
        just solved through a model settle it so the accounting tracks
        reality and eviction fires as soon as the budget is crossed.
        """
        ins = _rt.ACTIVE
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            entry.bytes = entry.model.cached_bytes()
            evicted = self._evict_over_budget()
        if ins is not None:
            for _ in range(evicted):
                ins.count("repro_cache_evictions_total")
            self._export_gauges(ins)

    def _evict_over_budget(self) -> int:
        """Drop LRU entries while over budget (caller holds the lock)."""
        evicted = 0
        while len(self._entries) > 1 and self._total_bytes() > self.max_bytes:
            self._entries.popitem(last=False)
            self._evictions += 1
            evicted += 1
        return evicted

    def _total_bytes(self) -> int:
        return sum(e.bytes for e in self._entries.values())

    def _export_gauges(self, ins) -> None:
        ins.gauge("repro_cache_bytes", float(self._total_bytes()))
        ins.gauge("repro_cache_entries", float(len(self._entries)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Snapshot for ``repro serve`` status docs and tests."""
        with self._lock:
            entries = [
                {
                    "fingerprint": e.fingerprint,
                    "K": e.model.K,
                    "bytes": e.bytes,
                    "hits": e.hits,
                    "build_seconds": round(e.build_seconds, 6),
                }
                for e in self._entries.values()
            ]
            return {
                "entries": entries,
                "count": len(entries),
                "bytes": sum(e["bytes"] for e in entries),
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "build_seconds": round(self._build_seconds, 6),
            }

    def activate(self):
        """Install as the ambient process cache (context manager).

        While active, :func:`repro.experiments._sweeps._swept_model`
        (and anything else consulting :func:`ambient_cache`) builds its
        models through this cache, so repeated sweeps in one process —
        e.g. behind a long-lived service — share warm models.
        """
        return _activate(self)


# ----------------------------------------------------------------------
# Ambient (process-local) cache, mirroring repro.obs.runtime.ACTIVE.
_AMBIENT: ModelCache | None = None


def ambient_cache() -> ModelCache | None:
    """The process-local ambient model cache, or ``None`` (the default)."""
    return _AMBIENT


@contextmanager
def _activate(cache: ModelCache):
    global _AMBIENT
    prev = _AMBIENT
    _AMBIENT = cache
    try:
        yield cache
    finally:
        _AMBIENT = prev
