"""``repro serve``: an asyncio HTTP front-end over the solver service.

Stdlib only — ``asyncio.start_server`` plus a deliberately small
HTTP/1.1 subset with **keep-alive** (bounded requests per connection,
bounded idle between them; ``Connection: close`` honored either way).
Endpoints:

* ``POST /solve`` — body ``{"spec": {...}, "K": 8, "N": 60,
  "metric": "makespan", "propagation": "propagator",
  "deadline": 5.0, "robust": false}``.  ``spec`` is the JSON wire format
  of :mod:`repro.network.serialize`.  The response carries the answer
  twice: ``value`` in the journal's bit-exact codec
  (:func:`repro.experiments.journal.encode_value` — floats as IEEE-754
  hex, arrays as base64) for byte-faithful comparison, and ``display``
  as plain JSON numbers for humans.
* ``POST /solve_many`` — ``{"queries": [<solve bodies>], "deadline": s}``;
  answers come back in request order, deduped and grouped per model by
  :meth:`~repro.serve.service.SolverService.solve_many`.
* ``GET /status`` — cache stats, request counters, uptime, admission/
  overload stats, and (when the daemon was started with ``--shard-dir``)
  the live fleet document.
* ``GET /healthz`` — liveness: ``200`` whenever the process can answer.
* ``GET /readyz`` — readiness: ``200`` while accepting work, ``503``
  once draining (SIGTERM received).
* ``GET /metrics`` — Prometheus text exposition of the daemon's
  registry (``repro_requests_total``, ``repro_admission_*``, cache and
  solver counters).
* ``POST /drill`` — swap the armed :class:`~repro.resilience.faults.
  ServeFaultPlan` at runtime (``{"faults": "slow-solve@0.3"}``); only
  routed when the daemon was started with ``--drill-endpoint``.

**Overload control** (docs/ROBUSTNESS.md "Overload and admission
control"): every solve passes an :class:`~repro.serve.admission.
AdmissionController` — bounded in-flight, bounded wait queue with
deadline eviction, cost-aware admission via the exact ``D_RP(k)``
prediction, and a brownout mode that forces cheap ladder rungs while the
queue is past its watermark.  Shed responses are ``429``/``503`` with a
``Retry-After`` header; brownout/down-tier answers are ``203`` with the
honest ladder report attached.

**Response codes mirror the resilience ladder's 0/1/2 exit codes**
(docs/ROBUSTNESS.md): ``200`` = rung 0, a clean exact answer; ``203``
(Non-Authoritative Information) = rung 1, a degraded-but-honest answer
(``robust`` ladder solves, brownout, cost down-tier); ``500`` = rung 2,
the solver failed with a reason code.  Transport-level verdicts keep
their usual meanings: ``400`` malformed request, ``404``/``405`` bad
route, ``413`` oversized body, ``429`` shed (retry later), ``503``
shed (service-side: queue deadline or draining), ``504`` per-request
deadline exceeded.

Solves run on a thread pool (the cache serializes builds per
fingerprint; the metrics registry is thread-safe).  The admission slot
is released when the *work* finishes — a request that times out (504)
leaves its thread running and the slot held until then, counted in
``repro_abandoned_work_total``, so abandoned work can no longer starve
admission invisibly.  The daemon arms a **metrics-only** instrumentation
bundle: a tracer is single-threaded by design and would grow without
bound in a long-lived process, so spans are disabled while counters stay
live.

SIGTERM/SIGINT begin a **graceful drain**: readiness flips to ``503``,
queued waiters are shed, new solves are refused, in-flight solves get
``drain_grace`` seconds to finish (the listener stays open so
``/readyz`` keeps answering), final metrics are flushed (to
``--metrics-out`` when configured), then the process exits 0 — hard, if
abandoned threads are still mid-solve past the grace.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path

from repro.experiments.journal import encode_value
from repro.network.serialize import spec_from_dict
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import default_registry
from repro.resilience.faults import ServeFaultPlan, trigger_serve_fault
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    ShedError,
)
from repro.serve.cache import DEFAULT_CACHE_BYTES, ModelCache
from repro.serve.service import METRICS, Query, SolverService

__all__ = ["ServeDaemon", "run_daemon"]

#: Largest accepted request body (a spec is a few KB; batches stay small).
MAX_BODY_BYTES = 16 << 20
#: Largest accepted header block.
MAX_HEADER_BYTES = 64 << 10

#: rung → HTTP status (see module docstring).
RUNG_STATUS = {0: 200, 1: 203, 2: 500}

_REASONS = {
    200: "OK",
    203: "Non-Authoritative Information",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    def __init__(self, code: int, message: str, *,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after = retry_after


def _display(value):
    """Human-readable JSON rendering next to the bit-exact codec."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    return float(value)


def _consume_exception(fut: asyncio.Future) -> None:
    """Silence 'exception never retrieved' on abandoned pool work."""
    if not fut.cancelled():
        fut.exception()


def _parse_query(doc: dict) -> Query:
    if not isinstance(doc, dict):
        raise _HttpError(400, "query must be a JSON object")
    try:
        spec = spec_from_dict(doc["spec"])
        K = int(doc["K"])
        N = int(doc["N"])
    except _HttpError:
        raise
    except KeyError as exc:
        raise _HttpError(400, f"query missing field {exc.args[0]!r}") from exc
    except Exception as exc:
        raise _HttpError(400, f"bad query: {exc}") from exc
    metric = doc.get("metric", "makespan")
    propagation = doc.get("propagation", "propagator")
    if metric not in METRICS:
        raise _HttpError(400, f"metric must be one of {METRICS}, "
                              f"got {metric!r}")
    if propagation not in ("propagator", "solve", "spectral"):
        raise _HttpError(400, f"unknown propagation {propagation!r}")
    try:
        return Query(spec=spec, K=K, N=N, metric=metric,
                     propagation=propagation)
    except ValueError as exc:
        raise _HttpError(400, str(exc)) from exc


class ServeDaemon:
    """One listening service instance (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8278,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        threads: int = 4,
        deadline: float | None = None,
        shard_dir: str | None = None,
        admission: AdmissionConfig | None = None,
        drill: ServeFaultPlan | None = None,
        drill_endpoint: bool = False,
        drain_grace: float = 5.0,
        keepalive_requests: int = 100,
        keepalive_idle: float = 5.0,
        metrics_out: str | None = None,
    ):
        if drain_grace < 0:
            raise ValueError(f"drain_grace must be >= 0, got {drain_grace!r}")
        if keepalive_requests < 1:
            raise ValueError(
                f"keepalive_requests must be >= 1, got {keepalive_requests!r}"
            )
        if keepalive_idle <= 0:
            raise ValueError(
                f"keepalive_idle must be > 0, got {keepalive_idle!r}"
            )
        self.host = host
        self.port = port
        self.deadline = deadline
        self.shard_dir = shard_dir
        self.drain_grace = float(drain_grace)
        self.keepalive_requests = int(keepalive_requests)
        self.keepalive_idle = float(keepalive_idle)
        self.metrics_out = metrics_out
        self.drill_endpoint = bool(drill_endpoint)
        #: armed service-fault plan (swapped atomically via ``/drill``)
        self.fault_plan = drill if drill is not None and drill.active else None
        self.cache = ModelCache(max_bytes=cache_bytes)
        self.service = SolverService(cache=self.cache)
        self.instrument = Instrumentation(metrics=default_registry())
        self.admission = AdmissionController(
            admission if admission is not None
            else AdmissionConfig(max_inflight=max(1, int(threads))),
            instrument=self.instrument,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(threads)),
            thread_name_prefix="repro-serve",
        )
        self._server: asyncio.AbstractServer | None = None
        self._drain_requested = asyncio.Event()
        self._started = time.monotonic()
        self._requests = 0
        self._ready = True
        self._solve_counter = itertools.count(1)
        #: pool futures whose requester timed out (504) — still running
        self._abandoned_live: set = set()
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.port = int(port)
        return str(host), self.port

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or a signal handler) begins the drain.

        The listener stays open *through* the drain so ``/readyz`` keeps
        answering ``503`` while in-flight solves finish; it closes only
        once the drain completes (or its grace expires).

        The instrumentation bundle is armed ambiently for the whole
        serving lifetime (``_rt.ACTIVE`` is a process global — one
        balanced enter/exit here; per-request activation would interleave
        its save/restore across overlapping solves and leak the bundle).
        """
        if self._server is None:
            await self.start()
        with self.instrument.activate():
            async with self._server:
                await self._drain_requested.wait()
                await self._drain()
        for w in list(self._writers):
            w.close()
        # Don't wait for abandoned threads: they are accounted, the
        # metrics are flushed, and run_daemon hard-exits past the grace.
        self._pool.shutdown(wait=False, cancel_futures=True)

    def stop(self) -> None:
        """Begin graceful drain (idempotent; call from the loop thread)."""
        self._drain_requested.set()

    @property
    def ready(self) -> bool:
        """True while the daemon accepts new solves."""
        return self._ready

    @property
    def busy_at_exit(self) -> bool:
        """True when solver threads were still running after the drain."""
        return self.admission.inflight > 0 or bool(self._abandoned_live)

    async def _drain(self) -> None:
        """Shed the queue, wait (bounded) for live work, flush metrics."""
        self._ready = False
        self.admission.begin_drain()
        deadline = time.monotonic() + self.drain_grace
        while (self.admission.inflight - len(self._abandoned_live) > 0
               and time.monotonic() < deadline):
            await asyncio.sleep(0.02)
        # Let the final responses make it onto the wire.
        await asyncio.sleep(0.05)
        self._flush_metrics()

    def _flush_metrics(self) -> None:
        if not self.metrics_out:
            return
        try:
            Path(self.metrics_out).write_text(
                self.instrument.metrics.to_prometheus()
            )
        except OSError as exc:  # pragma: no cover - disk full etc.
            print(f"repro serve: metrics flush to {self.metrics_out} "
                  f"failed: {exc}", file=sys.stderr)

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            served = 0
            while served < self.keepalive_requests:
                served += 1
                endpoint = "unknown"
                t0 = time.perf_counter()
                try:
                    request = await self._read_request(reader,
                                                       idle=served > 1)
                except _HttpError as exc:
                    # Framing error: answer best-effort, then close (the
                    # byte stream can no longer be trusted).
                    payload, ctype = self._render(
                        exc.code, {"status": "error", "error": exc.message}
                    )
                    await self._write_response(writer, exc.code, payload,
                                               ctype, keep_alive=False)
                    self._count_request(exc.code, endpoint, t0)
                    break
                if request is None:
                    break  # clean close or idle timeout between requests
                method, path, version, headers, body = request
                endpoint = path
                keep = self._keep_alive(version, headers, served)
                retry_after = None
                try:
                    code, doc = await self._route(method, path, body)
                except ShedError as exc:
                    code = exc.code
                    retry_after = exc.retry_after
                    doc = {"status": "shed", "reason": exc.reason,
                           "error": str(exc),
                           "retry_after": exc.retry_after}
                except _HttpError as exc:
                    code, doc = exc.code, {"status": "error",
                                           "error": exc.message}
                    retry_after = exc.retry_after
                except Exception as exc:  # solver crash → structured 500
                    code = 500
                    doc = {"status": "error",
                           "reason": getattr(exc, "reason", "internal"),
                           "error": str(exc)}
                payload, ctype = self._render(code, doc)
                await self._write_response(writer, code, payload, ctype,
                                           keep_alive=keep,
                                           retry_after=retry_after)
                self._count_request(code, endpoint, t0)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _count_request(self, code: int, endpoint: str, t0: float) -> None:
        self._requests += 1
        ins = self.instrument
        ins.count("repro_requests_total", endpoint=endpoint, code=str(code))
        ins.observe("repro_request_seconds",
                    time.perf_counter() - t0, endpoint=endpoint)

    def _keep_alive(self, version: str, headers: dict, served: int) -> bool:
        """HTTP/1.1 default keep-alive; HTTP/1.0 opt-in; drain closes."""
        if served >= self.keepalive_requests or self._drain_requested.is_set():
            return False
        conn = headers.get("connection", "").lower()
        if "close" in conn:
            return False
        if version == "HTTP/1.0":
            return "keep-alive" in conn
        return True

    async def _read_request(
        self, reader: asyncio.StreamReader, *, idle: bool = False
    ) -> tuple[str, str, str, dict, bytes] | None:
        """Read one request; ``None`` = clean close (EOF / idle timeout)."""
        try:
            if idle:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.keepalive_idle
                )
            else:
                head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: close quietly
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "header block too large") from exc
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # EOF between requests: clean close
            raise _HttpError(400, "truncated request") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "header block too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, path, version = parts[0].upper(), parts[1], parts[2].upper()
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes over the "
                                  f"{MAX_BODY_BYTES} cap")
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], version, headers, body

    def _render(self, code: int, doc) -> tuple[bytes, str]:
        if isinstance(doc, (bytes, str)):
            payload = doc.encode("utf-8") if isinstance(doc, str) else doc
            return payload, "text/plain; version=0.0.4; charset=utf-8"
        return (json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n",
                "application/json")

    async def _write_response(
        self, writer: asyncio.StreamWriter, code: int,
        payload: bytes, ctype: str, *,
        keep_alive: bool = False, retry_after: float | None = None,
    ) -> None:
        reason = _REASONS.get(code, "OK")
        head = [
            f"HTTP/1.1 {code} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if keep_alive:
            head.append(
                f"Keep-Alive: timeout={self.keepalive_idle:g}, "
                f"max={self.keepalive_requests}"
            )
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after:g}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, object]:
        if path == "/solve":
            self._require(method, "POST", path)
            return await self._solve(self._json(body))
        if path == "/solve_many":
            self._require(method, "POST", path)
            return await self._solve_many(self._json(body))
        if path == "/status":
            self._require(method, "GET", path)
            return 200, self._status_doc()
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, {
                "status": "ok",
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            }
        if path == "/readyz":
            self._require(method, "GET", path)
            if self._ready:
                return 200, {"ready": True}
            return 503, {"ready": False, "reason": "draining"}
        if path == "/metrics":
            self._require(method, "GET", path)
            return 200, self.instrument.metrics.to_prometheus()
        if path == "/drill":
            self._require(method, "POST", path)
            return self._drill(self._json(body))
        raise _HttpError(404, f"no route {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(405, f"{path} expects {expected}, got {method}")

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise _HttpError(400, "body must be a JSON object")
        return doc

    # -- endpoints -----------------------------------------------------
    async def _offload(self, fn, deadline: float | None):
        """Run ``fn`` on the solver pool behind admission control.

        Acquires one admission slot (may raise
        :class:`~repro.serve.admission.ShedError`), releases it when the
        *work* finishes — via a done-callback on the pool future, which
        fires on completion *and* on pre-start cancellation.  On deadline
        expiry the HTTP answer is 504 immediately; unstarted work is
        cancelled (slot freed), running work is abandoned-but-accounted
        (``repro_abandoned_work_total``) and keeps its slot until the
        thread finishes, so admission sees the true pool occupancy."""
        ticket = await self.admission.acquire()

        def run(_fn=fn):
            trigger_serve_fault(self.fault_plan,
                                next(self._solve_counter))
            return _fn()

        try:
            cf = self._pool.submit(run)
        except RuntimeError:
            ticket.release()
            raise ShedError(
                "draining", "solver pool is shut down", code=503,
                retry_after=self.admission.config.retry_after,
            ) from None
        cf.add_done_callback(lambda _cf: ticket.release())
        fut = asyncio.wrap_future(cf)
        if deadline is None:
            return await fut
        try:
            return await asyncio.wait_for(asyncio.shield(fut), deadline)
        except asyncio.TimeoutError:
            if not cf.cancel():
                # Mid-solve: document the abandonment, don't pretend to
                # preempt.  The finished result still warms the cache.
                self.admission.note_abandoned()
                self._abandoned_live.add(cf)
                cf.add_done_callback(self._abandoned_live.discard)
                fut.add_done_callback(_consume_exception)
            raise _HttpError(
                504, f"deadline of {deadline:g}s exceeded"
            ) from None

    def _deadline(self, doc: dict) -> float | None:
        raw = doc.get("deadline", self.deadline)
        if raw is None:
            return None
        try:
            deadline = float(raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad deadline {raw!r}") from exc
        if not deadline > 0:
            raise _HttpError(400, f"deadline must be positive, got {raw!r}")
        return deadline

    async def _solve(self, doc: dict) -> tuple[int, dict]:
        deadline = self._deadline(doc)
        robust = bool(doc.get("robust"))
        if robust and doc.get("metric", "makespan") != "makespan":
            raise _HttpError(400, "robust solves answer metric='makespan'")
        query = _parse_query(doc)
        verdict, _cost = self.admission.assess_cost(
            query.spec, query.K, can_downtier=query.metric == "makespan"
        )
        if verdict == "downtier":
            # Over the cost caps: the operator-free amva rung answers.
            return await self._solve_ladder(query, deadline,
                                            ladder=("amva",),
                                            cause="downtier")
        if self.admission.brownout and query.metric == "makespan":
            return await self._solve_ladder(
                query, deadline, ladder=("approximation", "amva"),
                cause="brownout",
            )
        if robust:
            return await self._solve_robust(query, deadline)
        answer = await self._offload(
            lambda: self.service.solve(query), deadline
        )
        return 200, {
            "status": "ok",
            "rung": 0,
            "value": encode_value(answer.value),
            "display": _display(answer.value),
            "fingerprint": answer.fingerprint,
            "model_fingerprint": answer.model_fingerprint,
            "cached": answer.cached,
            "seconds": round(answer.seconds, 6),
        }

    async def _solve_robust(self, query: Query,
                            deadline: float | None) -> tuple[int, dict]:
        """Ladder solve: 200/203/500 = rung 0/1/2 (makespan only)."""
        from repro.resilience.errors import SolverError
        from repro.resilience.fallback import ResilienceConfig, solve_resilient

        def work():
            return solve_resilient(
                query.spec, query.K, query.N,
                ResilienceConfig(propagation=query.propagation),
            )

        try:
            result = await self._offload(work, deadline)
        except SolverError as exc:
            return RUNG_STATUS[2], {
                "status": "failed", "rung": 2,
                "reason": exc.reason, "error": str(exc),
            }
        rung = 1 if result.report.degraded else 0
        return RUNG_STATUS[rung], {
            "status": "degraded" if rung else "ok",
            "rung": rung,
            "method": result.report.method,
            "value": encode_value(float(result.makespan)),
            "display": float(result.makespan),
            "summary": result.report.summary(),
        }

    async def _solve_ladder(self, query: Query, deadline: float | None, *,
                            ladder: tuple[str, ...],
                            cause: str) -> tuple[int, dict]:
        """Policy-degraded solve (brownout / cost down-tier): always 203.

        The answer is honest — it carries the ladder report and the
        ``cause`` flag — but deliberately cheap, so overload pressure
        buys throughput instead of queue depth (Thomasian's UJA tiers as
        a brownout rung)."""
        from repro.resilience.errors import SolverError
        from repro.resilience.fallback import ResilienceConfig, solve_resilient

        def work():
            return solve_resilient(
                query.spec, query.K, query.N,
                ResilienceConfig(ladder=ladder,
                                 propagation=query.propagation),
            )

        try:
            result = await self._offload(work, deadline)
        except SolverError as exc:
            return RUNG_STATUS[2], {
                "status": "failed", "rung": 2,
                "reason": exc.reason, "error": str(exc),
            }
        if cause == "brownout":
            self.admission.note_brownout_solve()
        return RUNG_STATUS[1], {
            "status": "degraded",
            "rung": 1,
            cause: True,
            "method": result.report.method,
            "value": encode_value(float(result.makespan)),
            "display": float(result.makespan),
            "summary": result.report.summary(),
        }

    async def _solve_many(self, doc: dict) -> tuple[int, dict]:
        deadline = self._deadline(doc)
        raw = doc.get("queries")
        if not isinstance(raw, list) or not raw:
            raise _HttpError(400, "solve_many needs a non-empty "
                                  "'queries' list")
        queries = [_parse_query(q) for q in raw]
        # Batches are admitted whole or not at all: any over-cost member
        # sheds the batch (mixed metrics make per-query down-tiering a
        # silent correctness change).
        for q in queries:
            self.admission.assess_cost(q.spec, q.K, can_downtier=False)
        answers = await self._offload(
            lambda: self.service.solve_many(queries), deadline
        )
        return 200, {
            "status": "ok",
            "rung": 0,
            "answers": [
                {
                    "value": encode_value(a.value),
                    "display": _display(a.value),
                    "fingerprint": a.fingerprint,
                    "model_fingerprint": a.model_fingerprint,
                    "cached": a.cached,
                    "deduped": a.deduped,
                    "seconds": round(a.seconds, 6),
                }
                for a in answers
            ],
            "cache": self.cache.stats(),
        }

    def _drill(self, doc: dict) -> tuple[int, dict]:
        """Swap the armed service-fault plan (drill phase control)."""
        if not self.drill_endpoint:
            raise _HttpError(
                404, "drill endpoint disabled (start with --drill-endpoint)"
            )
        spec = doc.get("faults", "none")
        if not isinstance(spec, str):
            raise _HttpError(400, "'faults' must be a drill spec string "
                                  "(e.g. 'slow-solve@0.3')")
        try:
            plan = ServeFaultPlan.parse(spec)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from exc
        self.fault_plan = plan if plan.active else None
        return 200, {
            "status": "ok",
            "faults": asdict(plan) if plan.active else None,
        }

    def _status_doc(self) -> dict:
        doc = {
            "schema": "repro-serve-status/2",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": self._requests,
            "deadline": self.deadline,
            "ready": self._ready,
            "admission": self.admission.stats(),
            "faults": asdict(self.fault_plan) if self.fault_plan else None,
            "cache": self.cache.stats(),
            "fleet": None,
        }
        if self.shard_dir:
            from repro.obs.fleet import FleetView

            try:
                doc["fleet"] = FleetView.load(self.shard_dir).to_dict()
            except Exception as exc:  # fleet doc is best-effort
                doc["fleet"] = {"error": str(exc)}
        return doc


async def _run(daemon: ServeDaemon, port_file: str | None,
               pid_file: str | None) -> int:
    host, port = await daemon.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, daemon.stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"repro serve listening on http://{host}:{port}", file=sys.stderr)
    if pid_file:
        Path(pid_file).write_text(f"{os.getpid()}\n")
    if port_file:
        Path(port_file).write_text(f"{port}\n")
    await daemon.serve_until_stopped()
    print("repro serve: shutdown complete", file=sys.stderr)
    return 0


def run_daemon(
    host: str = "127.0.0.1",
    port: int = 8278,
    *,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    threads: int = 4,
    deadline: float | None = None,
    shard_dir: str | None = None,
    port_file: str | None = None,
    pid_file: str | None = None,
    admission: AdmissionConfig | None = None,
    drill: ServeFaultPlan | None = None,
    drill_endpoint: bool = False,
    drain_grace: float = 5.0,
    keepalive_requests: int = 100,
    keepalive_idle: float = 5.0,
    metrics_out: str | None = None,
) -> int:
    """Blocking entry point for the ``repro serve`` CLI (exit code 0)."""
    daemon = ServeDaemon(
        host, port, cache_bytes=cache_bytes, threads=threads,
        deadline=deadline, shard_dir=shard_dir, admission=admission,
        drill=drill, drill_endpoint=drill_endpoint, drain_grace=drain_grace,
        keepalive_requests=keepalive_requests, keepalive_idle=keepalive_idle,
        metrics_out=metrics_out,
    )
    try:
        code = asyncio.run(_run(daemon, port_file, pid_file))
    except KeyboardInterrupt:  # pragma: no cover - signal path covered above
        return 0
    if daemon.busy_at_exit:
        # Abandoned solver threads outlived the drain grace; the k8s-style
        # answer is a hard exit — metrics are flushed, work is accounted.
        print("repro serve: hard exit with solver threads still running",
              file=sys.stderr)
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(code)
    return code
