"""``repro serve``: an asyncio HTTP front-end over the solver service.

Stdlib only — ``asyncio.start_server`` plus a deliberately small
HTTP/1.1 subset (one request per connection, ``Connection: close``).
Endpoints:

* ``POST /solve`` — body ``{"spec": {...}, "K": 8, "N": 60,
  "metric": "makespan", "propagation": "propagator",
  "deadline": 5.0, "robust": false}``.  ``spec`` is the JSON wire format
  of :mod:`repro.network.serialize`.  The response carries the answer
  twice: ``value`` in the journal's bit-exact codec
  (:func:`repro.experiments.journal.encode_value` — floats as IEEE-754
  hex, arrays as base64) for byte-faithful comparison, and ``display``
  as plain JSON numbers for humans.
* ``POST /solve_many`` — ``{"queries": [<solve bodies>], "deadline": s}``;
  answers come back in request order, deduped and grouped per model by
  :meth:`~repro.serve.service.SolverService.solve_many`.
* ``GET /status`` — cache stats, request counters, uptime, and (when the
  daemon was started with ``--shard-dir``) the live fleet document.
* ``GET /metrics`` — Prometheus text exposition of the daemon's
  registry (``repro_requests_total``, ``repro_cache_*``, solver
  counters).

**Response codes mirror the resilience ladder's 0/1/2 exit codes**
(docs/ROBUSTNESS.md): ``200`` = rung 0, a clean exact answer; ``203``
(Non-Authoritative Information) = rung 1, a degraded-but-honest answer
from the ladder (``"robust": true`` solves only); ``500`` = rung 2, the
solver failed with a reason code.  Transport-level verdicts keep their
usual meanings: ``400`` malformed request, ``404``/``405`` bad route,
``413`` oversized body, ``504`` per-request deadline exceeded.

Solves run on a thread pool (the cache serializes builds per
fingerprint; the metrics registry is thread-safe).  The daemon arms a
**metrics-only** instrumentation bundle: a tracer is single-threaded by
design and would grow without bound in a long-lived process, so spans
are disabled while counters stay live.  SIGTERM/SIGINT stop the
listener, let in-flight requests finish, and exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.experiments.journal import encode_value
from repro.network.serialize import spec_from_dict
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import default_registry
from repro.serve.cache import DEFAULT_CACHE_BYTES, ModelCache
from repro.serve.service import METRICS, Query, SolverService

__all__ = ["ServeDaemon", "run_daemon"]

#: Largest accepted request body (a spec is a few KB; batches stay small).
MAX_BODY_BYTES = 16 << 20
#: Largest accepted header block.
MAX_HEADER_BYTES = 64 << 10

#: rung → HTTP status (see module docstring).
RUNG_STATUS = {0: 200, 1: 203, 2: 500}

_REASONS = {
    200: "OK",
    203: "Non-Authoritative Information",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def _display(value):
    """Human-readable JSON rendering next to the bit-exact codec."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    return float(value)


def _parse_query(doc: dict) -> Query:
    if not isinstance(doc, dict):
        raise _HttpError(400, "query must be a JSON object")
    try:
        spec = spec_from_dict(doc["spec"])
        K = int(doc["K"])
        N = int(doc["N"])
    except _HttpError:
        raise
    except KeyError as exc:
        raise _HttpError(400, f"query missing field {exc.args[0]!r}") from exc
    except Exception as exc:
        raise _HttpError(400, f"bad query: {exc}") from exc
    metric = doc.get("metric", "makespan")
    propagation = doc.get("propagation", "propagator")
    if metric not in METRICS:
        raise _HttpError(400, f"metric must be one of {METRICS}, "
                              f"got {metric!r}")
    if propagation not in ("propagator", "solve", "spectral"):
        raise _HttpError(400, f"unknown propagation {propagation!r}")
    try:
        return Query(spec=spec, K=K, N=N, metric=metric,
                     propagation=propagation)
    except ValueError as exc:
        raise _HttpError(400, str(exc)) from exc


class ServeDaemon:
    """One listening service instance (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8278,
        *,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        threads: int = 4,
        deadline: float | None = None,
        shard_dir: str | None = None,
    ):
        self.host = host
        self.port = port
        self.deadline = deadline
        self.shard_dir = shard_dir
        self.cache = ModelCache(max_bytes=cache_bytes)
        self.service = SolverService(cache=self.cache)
        self.instrument = Instrumentation(metrics=default_registry())
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(threads)),
            thread_name_prefix="repro-serve",
        )
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._started = time.monotonic()
        self._requests = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.port = int(port)
        return str(host), self.port

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`stop` (or a signal handler) fires."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stop.wait()
        self._pool.shutdown(wait=True)

    def stop(self) -> None:
        self._stop.set()

    # -- HTTP plumbing -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        endpoint = "unknown"
        t0 = time.perf_counter()
        try:
            try:
                method, path, body = await self._read_request(reader)
                endpoint = path
                code, doc = await self._route(method, path, body)
            except _HttpError as exc:
                code, doc = exc.code, {"status": "error",
                                       "error": exc.message}
            payload, ctype = self._render(code, doc)
            await self._write_response(writer, code, payload, ctype)
        except (ConnectionError, asyncio.IncompleteReadError):
            code = 0  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._requests += 1
        ins = self.instrument
        ins.count("repro_requests_total", endpoint=endpoint, code=str(code))
        ins.observe("repro_request_seconds",
                    time.perf_counter() - t0, endpoint=endpoint)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "header block too large") from exc
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated request") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "header block too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes over the "
                                  f"{MAX_BODY_BYTES} cap")
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], body

    def _render(self, code: int, doc) -> tuple[bytes, str]:
        if isinstance(doc, (bytes, str)):
            payload = doc.encode("utf-8") if isinstance(doc, str) else doc
            return payload, "text/plain; version=0.0.4; charset=utf-8"
        return (json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n",
                "application/json")

    async def _write_response(
        self, writer: asyncio.StreamWriter, code: int,
        payload: bytes, ctype: str,
    ) -> None:
        reason = _REASONS.get(code, "OK")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[int, object]:
        if path == "/solve":
            self._require(method, "POST", path)
            return await self._solve(self._json(body))
        if path == "/solve_many":
            self._require(method, "POST", path)
            return await self._solve_many(self._json(body))
        if path in ("/status", "/healthz"):
            self._require(method, "GET", path)
            return 200, self._status_doc()
        if path == "/metrics":
            self._require(method, "GET", path)
            return 200, self.instrument.metrics.to_prometheus()
        raise _HttpError(404, f"no route {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _HttpError(405, f"{path} expects {expected}, got {method}")

    @staticmethod
    def _json(body: bytes) -> dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise _HttpError(400, "body must be a JSON object")
        return doc

    # -- endpoints -----------------------------------------------------
    async def _offload(self, fn, deadline: float | None):
        """Run ``fn`` on the solver pool under an optional deadline.

        On timeout the HTTP answer is 504 immediately; the computation
        thread is not preempted (it finishes and warms the cache for the
        retry — document, don't pretend to cancel)."""
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, fn)
        if deadline is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            raise _HttpError(
                504, f"deadline of {deadline:g}s exceeded"
            ) from None

    def _deadline(self, doc: dict) -> float | None:
        raw = doc.get("deadline", self.deadline)
        if raw is None:
            return None
        try:
            deadline = float(raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad deadline {raw!r}") from exc
        if not deadline > 0:
            raise _HttpError(400, f"deadline must be positive, got {raw!r}")
        return deadline

    async def _solve(self, doc: dict) -> tuple[int, dict]:
        deadline = self._deadline(doc)
        if doc.get("robust"):
            return await self._solve_robust(doc, deadline)
        query = _parse_query(doc)
        with self.instrument.activate():
            answer = await self._offload(
                lambda: self.service.solve(query), deadline
            )
        return 200, {
            "status": "ok",
            "rung": 0,
            "value": encode_value(answer.value),
            "display": _display(answer.value),
            "fingerprint": answer.fingerprint,
            "model_fingerprint": answer.model_fingerprint,
            "cached": answer.cached,
            "seconds": round(answer.seconds, 6),
        }

    async def _solve_robust(self, doc: dict,
                            deadline: float | None) -> tuple[int, dict]:
        """Ladder solve: 200/203/500 = rung 0/1/2 (makespan only)."""
        from repro.resilience.errors import SolverError
        from repro.resilience.fallback import ResilienceConfig, solve_resilient

        if doc.get("metric", "makespan") != "makespan":
            raise _HttpError(400, "robust solves answer metric='makespan'")
        query = _parse_query(doc)

        def work():
            return solve_resilient(
                query.spec, query.K, query.N,
                ResilienceConfig(propagation=query.propagation),
            )

        with self.instrument.activate():
            try:
                result = await self._offload(work, deadline)
            except SolverError as exc:
                return RUNG_STATUS[2], {
                    "status": "failed", "rung": 2,
                    "reason": exc.reason, "error": str(exc),
                }
        rung = 1 if result.report.degraded else 0
        return RUNG_STATUS[rung], {
            "status": "degraded" if rung else "ok",
            "rung": rung,
            "method": result.report.method,
            "value": encode_value(float(result.makespan)),
            "display": float(result.makespan),
            "summary": result.report.summary(),
        }

    async def _solve_many(self, doc: dict) -> tuple[int, dict]:
        deadline = self._deadline(doc)
        raw = doc.get("queries")
        if not isinstance(raw, list) or not raw:
            raise _HttpError(400, "solve_many needs a non-empty "
                                  "'queries' list")
        queries = [_parse_query(q) for q in raw]
        with self.instrument.activate():
            answers = await self._offload(
                lambda: self.service.solve_many(queries), deadline
            )
        return 200, {
            "status": "ok",
            "rung": 0,
            "answers": [
                {
                    "value": encode_value(a.value),
                    "display": _display(a.value),
                    "fingerprint": a.fingerprint,
                    "model_fingerprint": a.model_fingerprint,
                    "cached": a.cached,
                    "deduped": a.deduped,
                    "seconds": round(a.seconds, 6),
                }
                for a in answers
            ],
            "cache": self.cache.stats(),
        }

    def _status_doc(self) -> dict:
        doc = {
            "schema": "repro-serve-status/1",
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "requests": self._requests,
            "deadline": self.deadline,
            "cache": self.cache.stats(),
            "fleet": None,
        }
        if self.shard_dir:
            from repro.obs.fleet import FleetView

            try:
                doc["fleet"] = FleetView.load(self.shard_dir).to_dict()
            except Exception as exc:  # fleet doc is best-effort
                doc["fleet"] = {"error": str(exc)}
        return doc


async def _run(daemon: ServeDaemon, port_file: str | None,
               pid_file: str | None) -> int:
    host, port = await daemon.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, daemon.stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"repro serve listening on http://{host}:{port}", file=sys.stderr)
    if pid_file:
        import os

        Path(pid_file).write_text(f"{os.getpid()}\n")
    if port_file:
        Path(port_file).write_text(f"{port}\n")
    await daemon.serve_until_stopped()
    print("repro serve: shutdown complete", file=sys.stderr)
    return 0


def run_daemon(
    host: str = "127.0.0.1",
    port: int = 8278,
    *,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    threads: int = 4,
    deadline: float | None = None,
    shard_dir: str | None = None,
    port_file: str | None = None,
    pid_file: str | None = None,
) -> int:
    """Blocking entry point for the ``repro serve`` CLI (exit code 0)."""
    daemon = ServeDaemon(
        host, port, cache_bytes=cache_bytes, threads=threads,
        deadline=deadline, shard_dir=shard_dir,
    )
    try:
        return asyncio.run(_run(daemon, port_file, pid_file))
    except KeyboardInterrupt:  # pragma: no cover - signal path covered above
        return 0
