"""``python -m repro.serve.drill``: the metastable-collapse drill.

A **metastable failure** (Bronson et al., HotOS '21) is the
service-death spiral that outlives its trigger: a transient slowdown
makes clients time out, timeouts become retries, retries hold the
server's queue at full, and the queue keeps every *new* request waiting
long enough to time out too — so the system stays collapsed after the
slowdown clears.  The sustaining feedback loop is built entirely out of
well-meaning clients.

This module stages that loop against a real :class:`~repro.serve.daemon.
ServeDaemon` (loopback TCP, ephemeral port, the production admission
controller in front of the production solver) and demonstrates both
halves of the story:

* the **naive arm** — zero-backoff, unbudgeted, breaker-less clients —
  collapses: after the injected ``slow-solve`` fault *clears*, tail
  goodput stays below ``collapse_ratio`` of baseline while the server
  keeps shedding (asserted from the admission stats the daemon serves);
* the **budgeted arm** — the same fleet behind a shared
  :class:`~repro.resilience.retry.RetryBudget` and
  :class:`~repro.resilience.retry.CircuitBreaker` — recovers: the
  breaker stops offering load during the fault, the queue drains the
  moment the fault clears, and tail goodput returns to at least
  ``recovery_ratio`` of baseline.

The drill is **closed-loop**: each client waits ``think_seconds`` after
every answered (or abandoned) request, so offered load responds to
service state exactly the way the paper's finite-workload models
assume.  Service time is pinned by the daemon's own fault injector
(``slow-solve@…`` re-armed over ``POST /drill``), which makes the
capacity arithmetic hold on slow CI machines: what matters is the
*ratio* of injected service time to ``attempt_timeout``, not the
solver's raw speed.

Every successful answer is checked **bit-identical** to a cold
in-process solve (the journal codec's IEEE-754 text), so overload
control provably never changed a result it admitted.

Exit status: 0 when every arm's assertions hold, 1 otherwise (the CI
overload-drill step runs this module directly).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.resilience.errors import (
    CircuitOpenError,
    OverloadError,
    RetryBudgetExhaustedError,
)
from repro.resilience.faults import ServeFaultPlan
from repro.resilience.retry import CircuitBreaker, RetryBudget, RetryPolicy
from repro.serve.admission import AdmissionConfig
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon

__all__ = ["DrillConfig", "run_drill", "main"]


@dataclass(frozen=True)
class DrillConfig:
    """Tuning of the collapse scenario (defaults are the CI drill).

    The load shape is deliberately *supercritical under retries, subcritical
    without them*: ``clients`` closed-loop clients against
    ``max_inflight`` solver slots run at ~90 % utilization at the base
    service time, so the queue that builds during the fault keeps every
    admitted request's sojourn past ``attempt_timeout`` — each admitted
    request becomes another client-abandoned zombie, and the collapse
    sustains itself on retries alone.
    """

    # -- fleet ---------------------------------------------------------
    clients: int = 6
    think_seconds: float = 0.7
    attempt_timeout: float = 0.8
    max_attempts: int = 5
    # -- injected service times (the capacity knob) --------------------
    slow_base: float = 0.3
    slow_fault: float = 0.9
    # -- phase timeline ------------------------------------------------
    warmup_seconds: float = 0.5
    baseline_seconds: float = 2.5
    fault_seconds: float = 1.5
    recovery_seconds: float = 4.0
    tail_seconds: float = 2.0
    # -- daemon --------------------------------------------------------
    threads: int = 2
    max_inflight: int = 2
    queue_depth: int = 8
    queue_deadline: float = 2.0
    retry_after: float = 0.1
    # -- verdict thresholds --------------------------------------------
    collapse_ratio: float = 0.3
    recovery_ratio: float = 0.5
    min_baseline_rate: float = 1.0
    min_tail_sheds: int = 3

    def __post_init__(self):
        if self.tail_seconds > self.recovery_seconds:
            raise ValueError("tail window must fit inside the recovery phase")
        if self.warmup_seconds >= self.baseline_seconds:
            raise ValueError("warmup must end before the baseline window")

    @property
    def total_seconds(self) -> float:
        return (self.baseline_seconds + self.fault_seconds
                + self.recovery_seconds)


# -- fleet-shared guards (one lock around the shared state) ------------
class _SharedBudget(RetryBudget):
    """A :class:`RetryBudget` safe to share across client threads."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self._lock = threading.Lock()

    def deposit(self) -> None:
        with self._lock:
            super().deposit()

    def try_withdraw(self) -> bool:
        with self._lock:
            return super().try_withdraw()


class _SharedBreaker(CircuitBreaker):
    """A :class:`CircuitBreaker` safe to share across client threads."""

    def __init__(self, *a, **kw):
        super().__init__(*a, **kw)
        self._lock = threading.Lock()

    def allow(self) -> bool:
        with self._lock:
            return super().allow()

    def record_success(self) -> None:
        with self._lock:
            super().record_success()

    def record_failure(self) -> None:
        with self._lock:
            super().record_failure()


class _DaemonHost:
    """A :class:`ServeDaemon` on its own thread + event loop."""

    def __init__(self, cfg: DrillConfig):
        self._cfg = cfg
        self.daemon: ServeDaemon | None = None
        self.host = "127.0.0.1"
        self.port = 0
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="drill-daemon", daemon=True
        )

    def _run(self) -> None:
        import asyncio

        async def main():
            cfg = self._cfg
            self.daemon = ServeDaemon(
                port=0,
                threads=cfg.threads,
                drill=ServeFaultPlan(slow_seconds=cfg.slow_base),
                drill_endpoint=True,
                drain_grace=2.0,
                admission=AdmissionConfig(
                    max_inflight=cfg.max_inflight,
                    queue_depth=cfg.queue_depth,
                    queue_deadline=cfg.queue_deadline,
                    retry_after=cfg.retry_after,
                ),
            )
            self._loop = asyncio.get_running_loop()
            self.host, self.port = await self.daemon.start()
            self._ready.set()
            await self.daemon.serve_until_stopped()

        asyncio.run(main())

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("drill daemon failed to start within 10s")
        return self.host, self.port

    def stop(self) -> None:
        if self._loop is not None and self.daemon is not None:
            self._loop.call_soon_threadsafe(self.daemon.stop)
        self._thread.join(timeout=30)


def _workload() -> tuple[dict, str]:
    """The drill's solve body and its cold bit-exact answer."""
    from repro.clusters import central_cluster
    from repro.core import TransientModel
    from repro.distributions import Shape
    from repro.experiments.journal import encode_value
    from repro.experiments.params import BASE_APP
    from repro.network.serialize import spec_to_dict

    spec = central_cluster(BASE_APP, {"rdisk": Shape.scv(10.0)})
    cold = TransientModel(spec, 5).makespan(30)
    return {"spec": spec_to_dict(spec), "K": 5, "N": 30}, encode_value(cold)


@dataclass
class _ArmTrace:
    """Thread-shared event log for one drill arm."""

    events: list = field(default_factory=list)   # (t_rel, kind)
    values: list = field(default_factory=list)   # "value" of every ok

    def rate(self, kind: str, lo: float, hi: float) -> float:
        n = sum(1 for t, k in self.events if k == kind and lo <= t < hi)
        return n / (hi - lo)

    def count(self, kind: str) -> int:
        return sum(1 for _, k in self.events if k == kind)


def _worker(wid: int, client: ServeClient, doc: dict, trace: _ArmTrace,
            stop: threading.Event, t0: float, think: float) -> None:
    stop.wait(wid * think / max(1, 8))  # de-synchronize arrivals
    while not stop.is_set():
        try:
            answer = client.solve(doc)
        except (OverloadError, CircuitOpenError,
                RetryBudgetExhaustedError):
            trace.events.append((time.monotonic() - t0, "fail"))
        except (RuntimeError, OSError):
            trace.events.append((time.monotonic() - t0, "error"))
        else:
            trace.events.append((time.monotonic() - t0, "ok"))
            trace.values.append(answer.get("value"))
        stop.wait(think)


def _make_clients(cfg: DrillConfig, host: str, port: int, *,
                  budgeted: bool) -> tuple[list, object, object]:
    """Build the fleet: one client per worker, guards shared (or absent)."""
    if budgeted:
        budget = _SharedBudget()
        breaker = _SharedBreaker(failure_threshold=5, cooldown=0.5)
        policy = RetryPolicy(
            max_attempts=cfg.max_attempts, base_delay=0.05,
            multiplier=2.0, max_delay=1.0, jitter=0.25,
            inline_fallback=False,
        )
        honor = True
    else:
        budget = breaker = None
        policy = RetryPolicy(
            max_attempts=cfg.max_attempts, base_delay=0.0,
            multiplier=1.0, max_delay=0.0, jitter=0.0,
            inline_fallback=False,
        )
        honor = False
    clients = [
        ServeClient(
            host, port, policy=policy, budget=budget, breaker=breaker,
            attempt_timeout=cfg.attempt_timeout, honor_retry_after=honor,
        )
        for _ in range(cfg.clients)
    ]
    return clients, budget, breaker


def run_arm(cfg: DrillConfig, *, budgeted: bool,
            log=lambda s: None) -> dict:
    """One full collapse scenario against a fresh daemon; returns the
    arm's measurement document (no verdicts — see :func:`run_drill`)."""
    name = "budgeted" if budgeted else "naive"
    doc, expected = _workload()
    hostd = _DaemonHost(cfg)
    host, port = hostd.start()
    log(f"[{name}] daemon on {host}:{port}, base service "
        f"{cfg.slow_base:g}s on {cfg.max_inflight} slots")
    control = ServeClient(host, port,
                          policy=RetryPolicy(max_attempts=1),
                          honor_retry_after=False)
    clients, budget, breaker = _make_clients(cfg, host, port,
                                             budgeted=budgeted)
    trace = _ArmTrace()
    stop = threading.Event()
    try:
        control.solve(doc)  # warm the model cache outside the clock
        t0 = time.monotonic()
        workers = [
            threading.Thread(
                target=_worker, name=f"drill-{name}-{i}",
                args=(i, c, doc, trace, stop, t0, cfg.think_seconds),
                daemon=True,
            )
            for i, c in enumerate(clients)
        ]
        for w in workers:
            w.start()

        def sleep_until(mark: float) -> None:
            time.sleep(max(0.0, mark - (time.monotonic() - t0)))

        sleep_until(cfg.baseline_seconds)
        log(f"[{name}] fault: slow-solve@{cfg.slow_fault:g} "
            f"for {cfg.fault_seconds:g}s")
        control.drill(f"slow-solve@{cfg.slow_fault}")
        sleep_until(cfg.baseline_seconds + cfg.fault_seconds)
        log(f"[{name}] fault cleared (service back to "
            f"{cfg.slow_base:g}s)")
        control.drill(f"slow-solve@{cfg.slow_base}")
        adm_clear = control.status()["admission"]
        sleep_until(cfg.total_seconds - cfg.tail_seconds)
        sleep_until(cfg.total_seconds)
        adm_end = control.status()["admission"]
        stop.set()
        for w in workers:
            w.join(timeout=cfg.max_attempts * cfg.attempt_timeout + 10)
    finally:
        stop.set()
        for c in clients:
            c.close()
        control.close()
        hostd.stop()

    baseline_rate = trace.rate("ok", cfg.warmup_seconds,
                               cfg.baseline_seconds)
    tail_rate = trace.rate("ok", cfg.total_seconds - cfg.tail_seconds,
                           cfg.total_seconds)
    bad_values = [v for v in trace.values if v != expected]
    fleet = {
        "requests": sum(c.requests for c in clients),
        "retries": sum(c.retries for c in clients),
        "ok": sum(c.ok for c in clients),
        "shed_seen": sum(c.shed_seen for c in clients),
        "timeouts": sum(c.timeouts for c in clients),
        "failures": sum(c.failures for c in clients),
        "connections_opened": sum(c.connections_opened for c in clients),
    }
    if budget is not None:
        fleet["budget"] = budget.stats()
    if breaker is not None:
        fleet["breaker"] = breaker.stats()
    log(f"[{name}] baseline {baseline_rate:.2f} ok/s → tail "
        f"{tail_rate:.2f} ok/s; sheds {adm_end['shed_total']}, "
        f"abandoned {adm_end['abandoned']}")
    return {
        "arm": name,
        "baseline_rate": round(baseline_rate, 4),
        "tail_rate": round(tail_rate, 4),
        "ok": trace.count("ok"),
        "fail": trace.count("fail"),
        "error": trace.count("error"),
        "bit_identical": not bad_values,
        "bad_values": bad_values[:3],
        "expected_value": expected,
        "fleet": fleet,
        "admission_at_clear": adm_clear,
        "admission_end": adm_end,
    }


def _checks(cfg: DrillConfig, arm: dict) -> list[dict]:
    """Turn one arm's measurements into pass/fail verdicts."""
    name = arm["arm"]
    out = []

    def check(label: str, passed: bool, detail: str) -> None:
        out.append({"arm": name, "check": label, "passed": bool(passed),
                    "detail": detail})

    check("baseline-goodput",
          arm["baseline_rate"] >= cfg.min_baseline_rate,
          f"baseline {arm['baseline_rate']:.2f} ok/s "
          f"(need >= {cfg.min_baseline_rate:g})")
    check("bit-identical", arm["bit_identical"],
          f"{arm['ok']} answers vs cold solve "
          f"({len(arm['bad_values'])} mismatches)" if not arm["bit_identical"]
          else f"{arm['ok']} answers all byte-equal to the cold solve")
    if name == "naive":
        limit = cfg.collapse_ratio * arm["baseline_rate"]
        check("metastable-collapse", arm["tail_rate"] <= limit,
              f"tail {arm['tail_rate']:.2f} ok/s vs collapse bound "
              f"{limit:.2f} (= {cfg.collapse_ratio:g} x baseline) "
              f"after the fault cleared")
        shed_delta = (arm["admission_end"]["shed_total"]
                      - arm["admission_at_clear"]["shed_total"])
        check("sustained-shedding", shed_delta >= cfg.min_tail_sheds,
              f"{shed_delta} sheds after the fault cleared "
              f"(need >= {cfg.min_tail_sheds})")
        check("abandoned-work-accounted",
              arm["admission_end"]["abandoned"] >= 1,
              f"{arm['admission_end']['abandoned']} abandoned solves "
              f"counted by the server")
    else:
        floor = cfg.recovery_ratio * arm["baseline_rate"]
        check("goodput-recovers", arm["tail_rate"] >= floor,
              f"tail {arm['tail_rate']:.2f} ok/s vs recovery floor "
              f"{floor:.2f} (= {cfg.recovery_ratio:g} x baseline)")
        breaker = arm["fleet"].get("breaker", {})
        check("breaker-engaged", breaker.get("opens", 0) >= 1,
              f"circuit opened {breaker.get('opens', 0)} time(s) "
              f"during the fault")
        budget = arm["fleet"].get("budget", {})
        bound = 0.1 * budget.get("deposits", 0) + 10.0
        check("bounded-amplification",
              budget.get("withdrawals", 0) <= bound,
              f"{budget.get('withdrawals', 0)} budgeted retries vs "
              f"token-bucket bound {bound:.1f}")
    return out


def run_drill(cfg: DrillConfig | None = None, *,
              arms: tuple[str, ...] = ("naive", "budgeted"),
              log=lambda s: None) -> dict:
    """Run the requested arms and assemble the verdict document."""
    cfg = cfg if cfg is not None else DrillConfig()
    report = {
        "schema": "repro-serve-drill/1",
        "config": asdict(cfg),
        "arms": {},
        "checks": [],
    }
    for arm_name in arms:
        arm = run_arm(cfg, budgeted=arm_name == "budgeted", log=log)
        report["arms"][arm_name] = arm
        report["checks"].extend(_checks(cfg, arm))
    report["passed"] = all(c["passed"] for c in report["checks"])
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.drill",
        description="Metastable-collapse drill for the repro serve "
                    "daemon (naive clients collapse it, budgeted "
                    "clients recover it).",
    )
    parser.add_argument("--arm", choices=("both", "naive", "budgeted"),
                        default="both",
                        help="which client fleet(s) to drill")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report document here "
                             "('-' for stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines on stderr")
    args = parser.parse_args(argv)

    def log(line: str) -> None:
        if not args.quiet:
            print(line, file=sys.stderr)

    arms = ("naive", "budgeted") if args.arm == "both" else (args.arm,)
    report = run_drill(arms=arms, log=log)
    for c in report["checks"]:
        mark = "PASS" if c["passed"] else "FAIL"
        print(f"{mark} [{c['arm']}] {c['check']}: {c['detail']}")
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text)
    print("drill: " + ("all checks passed" if report["passed"]
                       else "CHECKS FAILED"))
    return 0 if report["passed"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
