"""Bounded admission control for the ``repro serve`` daemon.

PR 9's daemon accepted unbounded concurrent work: every request went
straight onto the solver thread pool, so a transient slowdown queued
work without limit and retries amplified it — the canonical entry ramp
into a *metastable* failure (the system stays collapsed after the
trigger clears because the retry storm regenerates the overload).  This
module is the server half of the cure; :mod:`repro.serve.client` is the
client half.

One :class:`AdmissionController` sits in front of the solver pool and is
confined to the daemon's event loop (single-threaded — no locks, only
asyncio primitives):

* **Bounded in-flight** — at most ``max_inflight`` solves hold a slot at
  once; a slot is released when the *work* finishes, not when the HTTP
  response is sent, so work abandoned by a timed-out request keeps its
  slot accounted until the thread actually frees it (the fix for the
  PR 9 ``_offload`` leak).
* **Bounded wait queue with deadline eviction** — up to ``queue_depth``
  requests may wait for a slot; a waiter that cannot be granted within
  ``queue_deadline`` seconds is evicted with a ``503`` instead of
  rotting (a queue that grows or waits without bound *is* the metastable
  buffer).
* **Load shedding** — a full queue sheds new arrivals immediately with
  ``429``; both shed shapes carry ``Retry-After`` so budget-aware
  clients desynchronize instead of hammering.
* **Cost-aware admission** — the exact ``D_RP(k)`` prediction of
  :func:`repro.resilience.budget.predict_cost` prices a query *before*
  it touches the pool; an over-cap spec is rejected (``429``) or
  down-tiered onto the ladder's operator-free ``amva`` rung (``203``)
  when the metric allows it.
* **Brownout** — when the queue length crosses ``brownout_watermark``
  the controller enters brownout and the daemon forces cheap ladder
  rungs (``approximation``/``amva`` → ``203`` responses) until the queue
  drains below the hysteresis clear mark; total brownout time is
  exported as ``repro_brownout_seconds``.
* **Drain** — :meth:`begin_drain` flips the controller into a terminal
  shed-everything state (``503`` reason ``draining``) and evicts every
  queued waiter, for the daemon's graceful SIGTERM path.

Every decision is observable: ``repro_admission_total{outcome}``,
``repro_shed_total{reason}``, ``repro_admission_inflight`` /
``repro_admission_queue_depth`` gauges and the
``repro_admission_wait_seconds`` histogram (docs/OBSERVABILITY.md), and
:meth:`stats` snapshots the same numbers into the daemon's ``/status``
document for the fleet console.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionTicket",
    "SHED_REASONS",
    "ShedError",
]

#: Stable shed reason codes (the ``repro_shed_total`` label vocabulary).
SHED_REASONS = ("queue-full", "queue-deadline", "over-cost", "draining")


class ShedError(Exception):
    """A request the admission controller refused to run.

    ``reason`` is one of :data:`SHED_REASONS`; ``code`` the HTTP status
    the daemon should answer with (``429`` when retrying later may
    succeed, ``503`` when the service itself is the problem); and
    ``retry_after`` the advisory backoff in seconds carried in the
    ``Retry-After`` header.
    """

    def __init__(self, reason: str, message: str, *, code: int,
                 retry_after: float):
        if reason not in SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {reason!r}; valid: {SHED_REASONS}"
            )
        super().__init__(message)
        self.reason = reason
        self.code = code
        self.retry_after = float(retry_after)


@dataclass(frozen=True)
class AdmissionConfig:
    """The overload-control knobs of one daemon (CLI: ``repro serve``).

    Parameters
    ----------
    max_inflight:
        Concurrent solves allowed on the pool (defaults to the solver
        thread count in the daemon; more than that only queues inside
        the executor where admission cannot see it).
    queue_depth:
        Requests allowed to wait for a slot; arrivals beyond this are
        shed with ``429``.  ``0`` disables queueing entirely.
    queue_deadline:
        Longest a waiter may sit queued before being evicted with
        ``503`` — bounds the work a collapsed daemon still owes.
    brownout_watermark:
        Queue length at which brownout starts (cheap ladder rungs,
        ``203`` answers).  ``None`` disables brownout.
    brownout_clear:
        Queue length at which brownout ends (hysteresis; defaults to
        ``brownout_watermark // 2``).
    max_query_states / max_query_bytes:
        Cost caps on a single query's predicted peak level dimension /
        operator+LU bytes (see :func:`repro.resilience.budget
        .predict_cost`).  An over-cap makespan query is down-tiered to
        the ``amva`` rung; anything else is shed with ``429``.
    retry_after:
        Advisory ``Retry-After`` seconds on shed responses.
    """

    max_inflight: int = 4
    queue_depth: int = 16
    queue_deadline: float = 2.0
    brownout_watermark: int | None = None
    brownout_clear: int | None = None
    max_query_states: int | None = None
    max_query_bytes: int | None = None
    retry_after: float = 1.0

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight!r}"
            )
        if self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth!r}"
            )
        if self.queue_deadline <= 0:
            raise ValueError(
                f"queue_deadline must be > 0, got {self.queue_deadline!r}"
            )
        if self.brownout_watermark is not None and self.brownout_watermark < 1:
            raise ValueError(
                f"brownout_watermark must be >= 1 (or None), "
                f"got {self.brownout_watermark!r}"
            )
        if self.retry_after <= 0:
            raise ValueError(
                f"retry_after must be > 0, got {self.retry_after!r}"
            )

    @property
    def clear_mark(self) -> int:
        """Queue length at which brownout clears (hysteresis floor)."""
        if self.brownout_watermark is None:
            return 0
        if self.brownout_clear is not None:
            return min(self.brownout_clear, self.brownout_watermark)
        return self.brownout_watermark // 2


class AdmissionTicket:
    """One held solver slot; release exactly once, from any thread.

    The daemon attaches :meth:`release` as a done-callback on the
    *pool future* — so the slot frees when the computation finishes,
    whether or not the HTTP request that started it is still around.
    Releases are marshalled onto the controller's event loop, so the
    controller itself stays lock-free.
    """

    __slots__ = ("_controller", "_loop", "_released", "waited")

    def __init__(self, controller: "AdmissionController",
                 loop: asyncio.AbstractEventLoop, waited: float):
        self._controller = controller
        self._loop = loop
        self._released = False
        #: seconds this request spent queued before admission
        self.waited = waited

    def release(self) -> None:
        """Give the slot back (idempotent, thread-safe)."""
        if self._released:
            return
        self._released = True
        try:
            self._loop.call_soon_threadsafe(self._controller._release_slot)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass


class AdmissionController:
    """Event-loop-confined overload controller (see module docstring)."""

    def __init__(self, config: AdmissionConfig | None = None,
                 instrument=None):
        self.config = config or AdmissionConfig()
        self._ins = instrument
        self._inflight = 0
        self._queue: deque[asyncio.Future] = deque()
        self._draining = False
        self._brownout_since: float | None = None
        # -- counters for stats() (metrics mirror these) ---------------
        self._admitted = 0
        self._shed: dict[str, int] = {r: 0 for r in SHED_REASONS}
        self._downtiered = 0
        self._brownout_solves = 0
        self._brownouts = 0
        self._brownout_seconds = 0.0
        self._abandoned = 0
        self._max_queue_seen = 0

    # -- public state ---------------------------------------------------
    @property
    def inflight(self) -> int:
        """Solves currently holding a slot (including abandoned work)."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._queue)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def brownout(self) -> bool:
        """True while the queue is past the brownout watermark."""
        return self._brownout_since is not None

    @property
    def idle(self) -> bool:
        """No slot held and nobody waiting (drain-completion signal)."""
        return self._inflight == 0 and not self._queue

    # -- admission ------------------------------------------------------
    async def acquire(self) -> AdmissionTicket:
        """Wait for (or be refused) one solver slot.

        Returns an :class:`AdmissionTicket` whose :meth:`~AdmissionTicket
        .release` must run when the work completes.  Raises
        :class:`ShedError` when the request is refused — queue full,
        queue deadline exceeded, or the daemon is draining.
        """
        loop = asyncio.get_running_loop()
        if self._draining:
            self._refuse("draining", "daemon is draining (SIGTERM received)",
                         code=503)
        if self._inflight < self.config.max_inflight:
            self._inflight += 1
            return self._admit(loop, 0.0)
        if len(self._queue) >= self.config.queue_depth:
            self._refuse(
                "queue-full",
                f"{self._inflight} solves in flight and "
                f"{len(self._queue)} queued (cap {self.config.queue_depth})",
                code=429,
            )
        waiter: asyncio.Future = loop.create_future()
        self._queue.append(waiter)
        self._max_queue_seen = max(self._max_queue_seen, len(self._queue))
        self._note_brownout()
        self._export_gauges()
        t0 = time.monotonic()
        try:
            await asyncio.wait_for(asyncio.shield(waiter),
                                   self.config.queue_deadline)
        except asyncio.TimeoutError:
            if not waiter.done():
                # Still queued: evict ourselves.
                self._queue.remove(waiter)
                waiter.cancel()
                self._note_brownout()
                self._refuse(
                    "queue-deadline",
                    f"queued {self.config.queue_deadline:g}s without a "
                    "free solver slot",
                    code=503,
                )
            # Granted in the same tick the deadline fired: the slot was
            # already transferred to this waiter — keep it.
        except asyncio.CancelledError:
            if waiter.cancelled():
                # Drain evicted us from the queue: settle as a shed.
                self._refuse("draining",
                             "daemon started draining while this request "
                             "was queued", code=503)
            # Our own task was cancelled from outside: tidy up and
            # propagate — give back a concurrently granted slot, or
            # leave the queue.
            if waiter.done():
                self._release_slot()
            else:
                self._queue.remove(waiter)
                waiter.cancel()
                self._note_brownout()
            raise
        return self._admit(loop, time.monotonic() - t0)

    def _admit(self, loop: asyncio.AbstractEventLoop,
               waited: float) -> AdmissionTicket:
        self._admitted += 1
        ins = self._ins
        if ins is not None:
            ins.count("repro_admission_total", outcome="admitted")
            ins.observe("repro_admission_wait_seconds", waited)
        self._export_gauges()
        return AdmissionTicket(self, loop, waited)

    def _refuse(self, reason: str, message: str, *, code: int) -> None:
        self._shed[reason] += 1
        ins = self._ins
        if ins is not None:
            ins.count("repro_shed_total", reason=reason)
            ins.count("repro_admission_total", outcome="shed")
        self._export_gauges()
        raise ShedError(reason, message, code=code,
                        retry_after=self.config.retry_after)

    def _release_slot(self) -> None:
        """Hand the freed slot to the oldest live waiter, else free it."""
        while self._queue:
            waiter = self._queue.popleft()
            if waiter.done():  # evicted or cancelled while queued
                continue
            waiter.set_result(None)  # slot transferred, _inflight steady
            self._note_brownout()
            self._export_gauges()
            return
        self._inflight = max(0, self._inflight - 1)
        self._note_brownout()
        self._export_gauges()

    # -- cost-aware admission -------------------------------------------
    def assess_cost(self, spec, K: int, *,
                    can_downtier: bool) -> tuple[str, "object | None"]:
        """Price a query before it touches the pool.

        Returns ``("admit", cost)`` when it fits the configured caps,
        ``("downtier", cost)`` when it busts them but ``can_downtier``
        (the daemon answers via the operator-free ``amva`` rung), and
        raises :class:`ShedError` (reason ``over-cost``, ``429``)
        otherwise.  ``cost`` is the
        :class:`~repro.resilience.budget.CostPrediction`, or ``None``
        when no cap is configured (prediction skipped).
        """
        cfg = self.config
        if cfg.max_query_states is None and cfg.max_query_bytes is None:
            return "admit", None
        from repro.resilience.budget import predict_cost

        cost = predict_cost(spec, K)
        over = (
            (cfg.max_query_states is not None
             and cost.peak_states > cfg.max_query_states)
            or (cfg.max_query_bytes is not None
                and cost.bytes > cfg.max_query_bytes)
        )
        if not over:
            return "admit", cost
        if can_downtier:
            self._downtiered += 1
            ins = self._ins
            if ins is not None:
                ins.count("repro_admission_total", outcome="downtier")
            return "downtier", cost
        self._refuse(
            "over-cost",
            f"predicted peak level dimension {cost.peak_states} "
            f"(≈{cost.bytes:.3g} bytes) exceeds the admission cost caps",
            code=429,
        )
        raise AssertionError("unreachable")  # pragma: no cover

    # -- brownout -------------------------------------------------------
    def _note_brownout(self) -> None:
        mark = self.config.brownout_watermark
        if mark is None:
            return
        qlen = len(self._queue)
        now = time.monotonic()
        if self._brownout_since is None:
            if qlen >= mark and not self._draining:
                self._brownout_since = now
                self._brownouts += 1
        elif qlen <= self.config.clear_mark or self._draining:
            elapsed = now - self._brownout_since
            self._brownout_since = None
            self._brownout_seconds += elapsed
            if self._ins is not None:
                self._ins.count("repro_brownout_seconds", elapsed)

    def note_brownout_solve(self) -> None:
        """Record one solve answered on a brownout-forced cheap rung."""
        self._brownout_solves += 1
        if self._ins is not None:
            self._ins.count("repro_admission_total", outcome="brownout")

    def note_abandoned(self) -> None:
        """Record one pool task abandoned by its (timed-out) request."""
        self._abandoned += 1
        if self._ins is not None:
            self._ins.count("repro_abandoned_work_total")

    # -- drain ----------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse all future work and evict every queued waiter."""
        if self._draining:
            return
        self._draining = True
        self._note_brownout()  # close an open brownout interval
        while self._queue:
            waiter = self._queue.popleft()
            if not waiter.done():
                waiter.cancel()
        self._export_gauges()

    # -- observability --------------------------------------------------
    def _export_gauges(self) -> None:
        ins = self._ins
        if ins is not None:
            ins.gauge("repro_admission_inflight", float(self._inflight))
            ins.gauge("repro_admission_queue_depth", float(len(self._queue)))

    def brownout_seconds(self) -> float:
        """Total brownout time, including any open interval."""
        total = self._brownout_seconds
        if self._brownout_since is not None:
            total += time.monotonic() - self._brownout_since
        return total

    def stats(self) -> dict:
        """Snapshot for ``/status`` and the fleet console."""
        cfg = self.config
        return {
            "max_inflight": cfg.max_inflight,
            "queue_depth": cfg.queue_depth,
            "queue_deadline": cfg.queue_deadline,
            "inflight": self._inflight,
            "queued": len(self._queue),
            "max_queue_seen": self._max_queue_seen,
            "admitted": self._admitted,
            "shed": {r: n for r, n in self._shed.items() if n},
            "shed_total": sum(self._shed.values()),
            "downtiered": self._downtiered,
            "brownout": self.brownout,
            "brownout_watermark": cfg.brownout_watermark,
            "brownouts": self._brownouts,
            "brownout_solves": self._brownout_solves,
            "brownout_seconds": round(self.brownout_seconds(), 6),
            "abandoned": self._abandoned,
            "draining": self._draining,
        }
