"""Batched query API over the content-addressed model cache.

A :class:`Query` names one question — a spec, a workstation count ``K``,
a workload ``N`` and a metric (``makespan``, ``interdeparture`` or
``departure``).  :func:`solve_many` answers a batch of them with the
minimum number of model builds:

1. every query gets a model fingerprint and a query fingerprint
   (model + metric + N);
2. duplicate query fingerprints are answered **once** and share the
   value;
3. unique queries are grouped per model, so an N-sweep against one spec
   pays a single build — under ``propagation="spectral"`` each extra
   ``N`` is nearly free (the refill sum is closed-form);
4. distinct-model groups either run serially through the shared
   :class:`~repro.serve.cache.ModelCache`, or fan out across a
   :class:`~repro.experiments.executor.SweepExecutor` pool (one group
   per point; pool workers build cold, so fan-out trades warm reuse for
   parallelism on wide many-model batches).

Answers are **bit-identical** to per-query cold solves at any batch
order or concurrency: a cached model holds exactly the operators a cold
build would construct, evaluation is deterministic given those
operators, and pool points are pure functions of the query
(pinned in ``tests/serve/test_service.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.network.spec import NetworkSpec
from repro.serve.cache import ModelCache, model_fingerprint

__all__ = ["Answer", "Query", "SolverService", "solve_many"]

#: Supported query metrics → model evaluators.
METRICS = ("makespan", "interdeparture", "departure")


def _evaluate(model, metric: str, N: int):
    if metric == "makespan":
        return model.makespan(N)
    if metric == "interdeparture":
        return model.interdeparture_times(N)
    if metric == "departure":
        return model.departure_times(N)
    raise ValueError(
        f"metric must be one of {METRICS}, got {metric!r}"
    )


@dataclass(frozen=True)
class Query:
    """One question for the service (hashable by content fingerprint)."""

    spec: NetworkSpec
    K: int
    N: int
    metric: str = "makespan"
    propagation: str = "propagator"

    def __post_init__(self):
        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {METRICS}, got {self.metric!r}"
            )

    def model_fingerprint(self) -> str:
        """Key of the model this query runs against (spec, K, backend)."""
        return model_fingerprint(
            self.spec, self.K, propagation=self.propagation
        )

    def fingerprint(self, model_fp: str | None = None) -> str:
        """Key of the full question: model key + metric + N."""
        import hashlib

        mfp = model_fp or self.model_fingerprint()
        return hashlib.sha256(
            f"{mfp}:{self.metric}:{int(self.N)}".encode("ascii")
        ).hexdigest()


@dataclass
class Answer:
    """One result, with enough provenance to audit the cache path."""

    value: "float | np.ndarray"
    fingerprint: str
    model_fingerprint: str
    #: the model came out of the warm cache (False = built for this call)
    cached: bool
    #: evaluation seconds (excludes any model build on the cold path)
    seconds: float
    #: this answer reused another query's value inside the same batch
    deduped: bool = False


def _solve_group(spec: NetworkSpec, K: int, propagation: str,
                 items: tuple) -> list:
    """Pool point: build one model, answer its queries (picklable)."""
    from repro.core.transient import TransientModel

    model = TransientModel(spec, int(K), propagation=propagation)
    return [_evaluate(model, metric, int(N)) for metric, N in items]


@dataclass
class SolverService:
    """The cache + batching engine behind ``repro serve``.

    One instance per process; safe to call from multiple threads (the
    cache serializes builds per fingerprint, and evaluation only reads
    a model's cached operators once built — the GIL plus per-surface
    laziness keeps concurrent first-touch builds correct because every
    lazy attribute is assigned atomically after construction).
    """

    cache: ModelCache = field(default_factory=ModelCache)

    def solve(self, query: Query) -> Answer:
        """Answer one query through the cache."""
        return self.solve_many([query])[0]

    def solve_many(
        self,
        queries: Sequence[Query],
        *,
        executor=None,
    ) -> list[Answer]:
        """Answer a batch with minimum builds (see module docstring).

        ``executor`` (a :class:`SweepExecutor`-like object with
        ``map(fn, calls, label=)``) fans distinct-model groups across a
        pool; ``None`` (default) reuses this process's warm cache.
        """
        queries = list(queries)
        model_fps = [q.model_fingerprint() for q in queries]
        query_fps = [q.fingerprint(m) for q, m in zip(queries, model_fps)]

        # Dedupe identical questions; group unique ones per model,
        # preserving first-appearance order for determinism of labels.
        first_of: dict[str, int] = {}
        groups: "dict[str, list[int]]" = {}
        for i, (qfp, mfp) in enumerate(zip(query_fps, model_fps)):
            if qfp in first_of:
                continue
            first_of[qfp] = i
            groups.setdefault(mfp, []).append(i)

        values: dict[str, object] = {}
        cached_flag: dict[str, bool] = {}
        seconds: dict[str, float] = {}

        if executor is not None:
            calls = [
                (queries[idxs[0]].spec, queries[idxs[0]].K,
                 queries[idxs[0]].propagation,
                 tuple((queries[i].metric, queries[i].N) for i in idxs))
                for idxs in groups.values()
            ]
            t0 = time.perf_counter()
            results = executor.map(_solve_group, calls, label="solve_many")
            per = (time.perf_counter() - t0) / max(len(queries), 1)
            for idxs, group_values in zip(groups.values(), results):
                for i, value in zip(idxs, group_values):
                    values[query_fps[i]] = value
                    cached_flag[query_fps[i]] = False
                    seconds[query_fps[i]] = per
        else:
            for mfp, idxs in groups.items():
                q0 = queries[idxs[0]]
                warm = mfp in self.cache
                model = self.cache.get_or_build(
                    q0.spec, q0.K, propagation=q0.propagation,
                    fingerprint=mfp,
                )
                for i in idxs:
                    t0 = time.perf_counter()
                    value = _evaluate(model, queries[i].metric, queries[i].N)
                    seconds[query_fps[i]] = time.perf_counter() - t0
                    values[query_fps[i]] = value
                    cached_flag[query_fps[i]] = warm
                self.cache.settle(mfp)

        return [
            Answer(
                value=values[qfp],
                fingerprint=qfp,
                model_fingerprint=mfp,
                cached=cached_flag[qfp],
                seconds=seconds[qfp],
                deduped=first_of[qfp] != i,
            )
            for i, (qfp, mfp) in enumerate(zip(query_fps, model_fps))
        ]


def solve_many(
    queries: Sequence[Query],
    *,
    cache: ModelCache | None = None,
    executor=None,
) -> list[Answer]:
    """Module-level convenience over a throwaway :class:`SolverService`."""
    service = SolverService(cache=cache if cache is not None else ModelCache())
    return service.solve_many(queries, executor=executor)
