"""Solver-as-a-service: warm model reuse behind a batched query surface.

The paper's pitch is that one cheap analytic model answers what-if
questions that would each cost a simulation run — but a cold
:class:`~repro.core.transient.TransientModel` still pays operator
assembly, LU factorization and propagator construction before its first
answer.  This package amortizes that cost across queries:

* :mod:`repro.serve.cache` — a content-addressed, byte-budgeted LRU of
  built models, keyed by the same host-independent SHA-256 canonical
  fingerprints the sweep journal uses;
* :mod:`repro.serve.service` — :func:`~repro.serve.service.solve_many`:
  dedupe by fingerprint, group per model, solve every ``N`` against one
  warm build (optionally fanning distinct-model groups across a
  :class:`~repro.experiments.executor.SweepExecutor` pool);
* :mod:`repro.serve.admission` — bounded admission control in front of
  the solver pool: max in-flight, deadline-evicted wait queue,
  ``429``/``503`` + ``Retry-After`` shedding, cost-aware admission via
  the exact ``D_RP(k)`` prediction, and brownout onto cheap ladder
  rungs;
* :mod:`repro.serve.daemon` — the ``repro serve`` asyncio HTTP front-end
  (``solve`` / ``solve_many`` / ``status`` / ``healthz`` / ``readyz`` /
  ``metrics`` / ``drill``) with keep-alive, per-request deadlines,
  graceful drain, and the resilience ladder's 0/1/2 verdicts mapped
  onto response codes;
* :mod:`repro.serve.client` — the retry-budgeted, circuit-broken,
  deadline-propagating client half (a fleet of these cannot
  retry-storm the daemon);
* :mod:`repro.serve.drill` — the closed-loop metastable-collapse drill
  (naive clients collapse the service, budgeted clients recover it).

Everything is stdlib + the existing solver stack; answers through the
cache are bit-identical to cold solves (pinned in ``tests/serve/``).
"""

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    ShedError,
)
from repro.serve.cache import (
    DEFAULT_CACHE_BYTES,
    ModelCache,
    ambient_cache,
    model_fingerprint,
)
from repro.serve.client import ServeClient
from repro.serve.service import Answer, Query, SolverService, solve_many

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "Answer",
    "DEFAULT_CACHE_BYTES",
    "ModelCache",
    "Query",
    "ServeClient",
    "ShedError",
    "SolverService",
    "ambient_cache",
    "model_fingerprint",
    "solve_many",
]
