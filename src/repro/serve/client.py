"""``repro.serve.client``: the overload-safe client half of the service.

A fleet of well-meaning clients is what turns a transient server
slowdown into a *metastable* collapse: every timeout becomes a retry,
retries regenerate the overload, and the system stays down after the
trigger clears.  :class:`ServeClient` packages the three standard
countermeasures so callers cannot accidentally build the feedback loop:

* **Backoff with deterministic jitter** — a
  :class:`~repro.resilience.retry.RetryPolicy` spaces retries
  exponentially, de-synchronized across clients by the splitmix64 jitter
  (no ``random`` state).
* **Token-bucket retry budget** — a shared
  :class:`~repro.resilience.retry.RetryBudget` bounds the fleet's
  aggregate retry amplification (~10 % of request rate by default);
  when the bucket is dry, the failed request is *reported*
  (:class:`~repro.resilience.errors.RetryBudgetExhaustedError`), not
  amplified.
* **Circuit breaker** — a shared
  :class:`~repro.resilience.retry.CircuitBreaker` stops offering load to
  a service that keeps refusing it
  (:class:`~repro.resilience.errors.CircuitOpenError` locally instead of
  another packet on the wire), probing again after a cooldown.

The client also **propagates deadlines** (the per-request wall budget is
resent to the server as the body's ``deadline`` so an abandoned solve is
bounded server-side too), **honors ``Retry-After``** from shed responses
(the server knows its queue better than any client-side formula), and
**reuses its HTTP connection** (keep-alive — connection churn is its own
overload amplifier).

Retries fire only on *overload-shaped* failures: ``429``/``503``
(admission shed), ``504`` (server-side deadline), and transport errors.
A ``400`` or ``500`` came from a responsive server that did real work —
retrying those burns capacity for nothing, so they are returned (or
surfaced) as-is.

Pass ``policy=RetryPolicy(max_attempts=1)`` (or ``budget=None,
breaker=None, honor_retry_after=False`` with a zero-delay policy) to
build the *naive* client the metastability drill uses as its control
group.  Instances are thread-safe (one lock around the shared
connection); budget and breaker may be shared across many clients to
model a fleet-wide budget.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

from repro.obs import runtime as _rt
from repro.resilience.errors import (
    CircuitOpenError,
    OverloadError,
    RetryBudgetExhaustedError,
)
from repro.resilience.retry import CircuitBreaker, RetryBudget, RetryPolicy

__all__ = ["ServeClient", "DEFAULT_CLIENT_POLICY"]

#: Statuses worth retrying: the server shed or abandoned the request
#: without doing (much) work.  Everything else is a real answer.
RETRYABLE_STATUSES = frozenset({429, 503, 504})

#: Conservative default: 3 attempts, fast first backoff, 25 % jitter.
DEFAULT_CLIENT_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=2.0,
    jitter=0.25, inline_fallback=False,
)


class ServeClient:
    """Deadline-propagating, retry-budgeted HTTP client for ``repro serve``.

    Parameters
    ----------
    host, port:
        The daemon's listening address.
    policy:
        Backoff schedule (:class:`RetryPolicy`); ``max_attempts=1``
        disables retries entirely.
    budget:
        Token-bucket retry budget, or ``None`` for unbudgeted retries
        (the naive/drill configuration).  Share one instance across
        clients to bound a whole fleet.
    breaker:
        Circuit breaker, or ``None`` to always offer load.  Shareable
        like the budget.
    deadline:
        Default per-request wall budget in seconds (overridable per
        call); also resent to the server in solve bodies so abandoned
        work is bounded on both sides.
    attempt_timeout:
        Cap on any *single* attempt, in seconds (classic
        request-timeout-times-N-retries shape).  Combined with the
        logical deadline by taking the minimum of the two remainders.
    honor_retry_after:
        Stretch backoff to at least the server's ``Retry-After`` hint.
    instrument:
        Metrics sink for ``repro_client_retries_total``; falls back to
        the ambient active instrumentation.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8278,
        *,
        policy: RetryPolicy | None = None,
        budget: RetryBudget | None = None,
        breaker: CircuitBreaker | None = None,
        deadline: float | None = None,
        attempt_timeout: float | None = None,
        honor_retry_after: bool = True,
        instrument=None,
    ):
        self.host = host
        self.port = int(port)
        self.policy = policy if policy is not None else DEFAULT_CLIENT_POLICY
        self.budget = budget
        self.breaker = breaker
        self.deadline = deadline
        self.attempt_timeout = attempt_timeout
        self.honor_retry_after = bool(honor_retry_after)
        self._ins = instrument
        self._lock = threading.Lock()
        self._conn: http.client.HTTPConnection | None = None
        self._request_index = 0
        # -- fleet-drill accounting (monotone counters) ----------------
        self.requests = 0
        self.retries = 0
        self.ok = 0            # 200/203 answers
        self.shed_seen = 0     # 429/503 responses observed (any attempt)
        self.timeouts = 0      # 504s + transport timeouts observed
        self.failures = 0      # logical requests that ultimately failed
        self.connections_opened = 0

    # -- connection management (call with the lock held) ---------------
    def _connection(self, timeout: float | None) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
            self.connections_opened += 1
        elif self._conn.sock is not None:
            self._conn.sock.settimeout(timeout)
        else:
            self._conn.timeout = timeout
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
            self._conn = None

    def close(self) -> None:
        """Close the kept-alive connection (idempotent)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one wire round-trip -------------------------------------------
    def _attempt(self, method: str, path: str, payload: bytes | None,
                 timeout: float | None) -> tuple[int, dict, float | None]:
        """One HTTP exchange → (status, doc, retry_after).  Raises
        ``OSError``/``http.client`` errors on transport failure."""
        conn = self._connection(timeout)
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
        except Exception:
            # Unknown connection state: never reuse a broken stream.
            self._drop_connection()
            raise
        if resp.will_close:
            self._drop_connection()
        retry_after = None
        header = resp.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:  # pragma: no cover - malformed header
                retry_after = None
        try:
            doc = json.loads(raw) if raw else {}
        except ValueError:
            doc = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(doc, dict):
            doc = {"value": doc}
        return resp.status, doc, retry_after

    # -- retrying request core -----------------------------------------
    def request(self, method: str, path: str, doc: dict | None = None, *,
                deadline: float | None = None,
                propagate_deadline: bool = False) -> tuple[int, dict]:
        """One logical request with backoff, budget, and breaker.

        Returns ``(status, doc)`` for any non-retryable answer.  Raises
        :class:`CircuitOpenError` without touching the wire while the
        breaker is open, :class:`RetryBudgetExhaustedError` when a retry
        is needed but unaffordable, and :class:`OverloadError` when
        every allowed attempt was shed/timed out.
        """
        deadline = self.deadline if deadline is None else deadline
        deadline_ts = (time.monotonic() + deadline
                       if deadline is not None else None)
        with self._lock:
            self._request_index += 1
            index = self._request_index
            self.requests += 1
            if self.breaker is not None and not self.breaker.allow():
                self.failures += 1
                raise CircuitOpenError(
                    f"circuit open for {self.host}:{self.port}",
                    cooldown_remaining=self.breaker.cooldown_remaining(),
                )
            if self.budget is not None:
                self.budget.deposit()
            last_code: int | None = None
            last_doc: dict = {}
            attempt = 0
            while True:
                attempt += 1
                remaining = (None if deadline_ts is None
                             else deadline_ts - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break  # wall budget exhausted → overload failure
                budget_s = remaining
                if self.attempt_timeout is not None:
                    budget_s = (self.attempt_timeout if budget_s is None
                                else min(budget_s, self.attempt_timeout))
                body = None
                if doc is not None:
                    send = dict(doc)
                    if propagate_deadline and budget_s is not None:
                        send["deadline"] = round(budget_s, 6)
                    body = json.dumps(send).encode("utf-8")
                try:
                    code, rdoc, retry_after = self._attempt(
                        method, path, body, budget_s
                    )
                except (OSError, http.client.HTTPException) as exc:
                    if isinstance(exc, (socket.timeout, TimeoutError)):
                        self.timeouts += 1
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    last_code, last_doc = None, {"error": str(exc)}
                    retry_after = None
                else:
                    if code in RETRYABLE_STATUSES:
                        if code == 504:
                            self.timeouts += 1
                        else:
                            self.shed_seen += 1
                        if self.breaker is not None:
                            self.breaker.record_failure()
                        last_code, last_doc = code, rdoc
                    else:
                        # A real answer (even a 400/500): the service is
                        # responsive, which is what the breaker protects.
                        if self.breaker is not None:
                            self.breaker.record_success()
                        if code in (200, 203):
                            self.ok += 1
                        return code, rdoc
                # -- a retry is wanted ---------------------------------
                if attempt >= self.policy.max_attempts:
                    break
                if self.breaker is not None and not self.breaker.allow():
                    self.failures += 1
                    raise CircuitOpenError(
                        f"circuit opened for {self.host}:{self.port} "
                        f"after attempt {attempt}",
                        cooldown_remaining=self.breaker.cooldown_remaining(),
                    )
                if self.budget is not None and not self.budget.try_withdraw():
                    self.failures += 1
                    raise RetryBudgetExhaustedError(
                        f"retry budget dry after attempt {attempt} "
                        f"({path} → {last_code})",
                        tokens=self.budget.tokens,
                    )
                delay = self.policy.delay(attempt, index)
                if self.honor_retry_after and retry_after is not None:
                    delay = max(delay, retry_after)
                if deadline_ts is not None:
                    delay = min(delay, max(0.0,
                                           deadline_ts - time.monotonic()))
                self.retries += 1
                ins = self._ins if self._ins is not None else _rt.ACTIVE
                if ins is not None:
                    ins.count("repro_client_retries_total",
                              trigger=str(last_code or "transport"))
                if delay > 0:
                    time.sleep(delay)
            self.failures += 1
            raise OverloadError(
                f"{path} shed/timed out on every allowed attempt "
                f"(last status {last_code}): "
                f"{last_doc.get('error', last_doc)}",
                code=last_code,
                shed_reason=last_doc.get("reason"),
                retry_after=last_doc.get("retry_after"),
                attempts=attempt,
            )

    # -- typed surface --------------------------------------------------
    def solve(self, doc: dict, *, deadline: float | None = None) -> dict:
        """POST ``/solve``; returns the answer doc (200 or honest 203).

        Raises :class:`OverloadError` (terminal shed/timeout),
        :class:`CircuitOpenError`, :class:`RetryBudgetExhaustedError`,
        or ``RuntimeError`` for a 4xx/5xx answer.
        """
        code, rdoc = self.request("POST", "/solve", doc, deadline=deadline,
                                  propagate_deadline=True)
        if code in (200, 203):
            return rdoc
        raise RuntimeError(
            f"/solve answered {code}: {rdoc.get('error', rdoc)}"
        )

    def solve_many(self, queries: list[dict], *,
                   deadline: float | None = None) -> dict:
        """POST ``/solve_many``; returns the batch doc on 200."""
        code, rdoc = self.request(
            "POST", "/solve_many", {"queries": queries},
            deadline=deadline, propagate_deadline=True,
        )
        if code == 200:
            return rdoc
        raise RuntimeError(
            f"/solve_many answered {code}: {rdoc.get('error', rdoc)}"
        )

    def status(self) -> dict:
        """GET ``/status`` (no retries beyond the configured policy)."""
        code, rdoc = self.request("GET", "/status")
        if code != 200:
            raise RuntimeError(f"/status answered {code}")
        return rdoc

    def healthz(self) -> bool:
        """GET ``/healthz`` → liveness."""
        code, _ = self.request("GET", "/healthz")
        return code == 200

    def readyz(self) -> bool:
        """GET ``/readyz`` → readiness (False while draining)."""
        try:
            code, _ = self.request("GET", "/readyz")
        except OverloadError:
            return False  # 503 = not ready, by definition
        return code == 200

    def drill(self, faults: str) -> dict:
        """POST ``/drill`` to re-arm the daemon's service-fault plan."""
        code, rdoc = self.request("POST", "/drill", {"faults": faults})
        if code != 200:
            raise RuntimeError(
                f"/drill answered {code}: {rdoc.get('error', rdoc)}"
            )
        return rdoc

    def stats(self) -> dict:
        """Client-side counters for drill assertions and reports."""
        out = {
            "requests": self.requests,
            "retries": self.retries,
            "ok": self.ok,
            "shed_seen": self.shed_seen,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "connections_opened": self.connections_opened,
        }
        if self.budget is not None:
            out["budget"] = self.budget.stats()
        if self.breaker is not None:
            out["breaker"] = self.breaker.stats()
        return out
