"""Product-form baselines: the Jackson / Gordon–Newell solutions the paper extends."""

from repro.jackson.convolution import (
    ClosedNetworkSolution,
    convolution_analysis,
    station_rate_factors,
)
from repro.jackson.mva import MVASolution, mva_analysis
from repro.jackson.amva import amva_analysis
from repro.jackson.bounds import (
    ThroughputBounds,
    asymptotic_bounds,
    balanced_job_bounds,
    saturation_point,
)
from repro.jackson.open_network import (
    OpenNetworkSolution,
    OpenStationMetrics,
    erlang_c,
    open_jackson_analysis,
)

__all__ = [
    "ClosedNetworkSolution",
    "convolution_analysis",
    "station_rate_factors",
    "MVASolution",
    "mva_analysis",
    "amva_analysis",
    "ThroughputBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "saturation_point",
    "OpenNetworkSolution",
    "OpenStationMetrics",
    "erlang_c",
    "open_jackson_analysis",
]
