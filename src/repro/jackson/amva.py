"""Approximate MVA for non-exponential FCFS stations.

Before exact transient/LAQT treatments, the standard engineering answer
to "my shared server is not exponential" was Reiser-style approximate
MVA: keep the arrival theorem, but charge an arriving customer the
*mean residual* of the service in progress,

.. math::

    R_j(N) = s_j + \\big(L_j(N{-}1) - ρ_j(N{-}1)\\big)\\,s_j
                 + ρ_j(N{-}1)\\, r_j,
    \\qquad r_j = s_j\\,\\frac{1 + C^2_j}{2},

with delay stations unchanged.  For ``C² = 1`` this *is* exact MVA; away
from it, it is a heuristic — the ``ablation_amva`` benchmark measures its
error against this library's exact steady state, which is the gap the
reproduced paper fills.

Utilization here is estimated as ``ρ_j(n) = X(n)·d_j`` (single-server
FCFS stations only, like exact MVA).
"""

from __future__ import annotations

import numpy as np

from repro.jackson.mva import MVASolution
from repro.network.spec import NetworkSpec

__all__ = ["amva_analysis"]


def amva_analysis(spec: NetworkSpec, N: int) -> MVASolution:
    """Run the residual-corrected approximate MVA recursion.

    Raises
    ------
    ValueError
        For finite multi-server stations (not supported, as in exact MVA).
    """
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    N = int(N)
    for st in spec.stations:
        if not st.is_delay and st.servers != 1:
            raise ValueError(
                f"station {st.name!r} has {st.servers} servers; approximate "
                "MVA here supports only single-server and delay stations"
            )
    visits = spec.visit_ratios()
    means = np.array([st.mean_service for st in spec.stations])
    scvs = np.array([st.dist.scv for st in spec.stations])
    is_delay = np.array([st.is_delay for st in spec.stations])
    residual = means * (1.0 + scvs) / 2.0
    demands = visits * means

    L = np.zeros(spec.n_stations)
    rho = np.zeros(spec.n_stations)
    X = 0.0
    R = means.copy()
    for n in range(1, N + 1):
        waiting = np.maximum(L - rho, 0.0)
        R = np.where(is_delay, means, means + waiting * means + rho * residual)
        X = n / float(visits @ R)
        L = X * visits * R
        rho = np.where(is_delay, 0.0, np.minimum(X * demands, 1.0))
    return MVASolution(
        throughput=float(X),
        interdeparture_time=float(1.0 / X),
        queue_means=L,
        residence_times=R,
    )
