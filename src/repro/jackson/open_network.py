"""Open Jackson networks (Jackson 1963).

The original product-form result the paper builds on: Poisson external
arrivals, exponential ``c``-server stations, probabilistic routing.  Each
station behaves as an independent M/M/c queue at its effective arrival
rate from the traffic equations.  Included as the open-system counterpart
of the closed/transient models (useful for sizing the shared servers
before running the finite-workload analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.validation import check_positive
from repro.network.spec import NetworkSpec

__all__ = ["OpenStationMetrics", "OpenNetworkSolution", "open_jackson_analysis", "erlang_c"]


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang C probability of waiting for an M/M/c queue.

    ``offered_load = λ/µ`` must satisfy ``offered_load < c``.  Computed via
    the numerically stable Erlang-B recursion.
    """
    if c < 1 or int(c) != c:
        raise ValueError(f"c must be a positive integer, got {c!r}")
    a = check_positive(offered_load, "offered_load")
    c = int(c)
    if a >= c:
        raise ValueError(f"offered load {a!r} must be below the server count {c}")
    b = 1.0
    for k in range(1, c + 1):
        b = a * b / (k + a * b)
    rho = a / c
    return b / (1.0 - rho + rho * b)


@dataclass(frozen=True)
class OpenStationMetrics:
    """Per-station M/M/c metrics in an open Jackson network."""

    name: str
    arrival_rate: float
    utilization: float
    mean_customers: float
    mean_sojourn: float
    mean_queue: float
    mean_wait: float


@dataclass(frozen=True)
class OpenNetworkSolution:
    """Full open-network solution."""

    stations: tuple[OpenStationMetrics, ...]

    @property
    def total_customers(self) -> float:
        """Mean number of tasks anywhere in the network."""
        return sum(s.mean_customers for s in self.stations)

    def system_response_time(self, external_rate: float) -> float:
        """Mean end-to-end task time by Little's law."""
        return self.total_customers / external_rate


def open_jackson_analysis(spec: NetworkSpec, external_rate: float) -> OpenNetworkSolution:
    """Solve the open Jackson network with Poisson(``external_rate``) input.

    External arrivals split over stations via ``spec.entry``; routing and
    exits are taken from the spec.  Stations must be exponential (product
    form); delay stations are treated as M/G/∞ (exact).

    Raises
    ------
    ValueError
        If any station would be unstable (``ρ ≥ 1``) or a queueing station
        is non-exponential.
    """
    rate = check_positive(external_rate, "external_rate")
    gamma = rate * spec.entry
    n = spec.n_stations
    lam = np.linalg.solve(np.eye(n) - spec.routing.T, gamma)

    out = []
    for j, st in enumerate(spec.stations):
        mean = st.mean_service
        a = lam[j] * mean
        if st.is_delay:
            # M/G/∞: insensitive, never unstable.
            metrics = OpenStationMetrics(
                name=st.name,
                arrival_rate=float(lam[j]),
                utilization=float(a),
                mean_customers=float(a),
                mean_sojourn=float(mean),
                mean_queue=0.0,
                mean_wait=0.0,
            )
            out.append(metrics)
            continue
        if st.dist.n_stages != 1:
            raise ValueError(
                f"station {st.name!r}: open Jackson analysis requires "
                "exponential service at queueing stations"
            )
        c = int(st.servers)
        rho = a / c
        if rho >= 1.0:
            raise ValueError(
                f"station {st.name!r} is unstable at external rate {rate!r} "
                f"(utilization {rho:.3f})"
            )
        pw = erlang_c(c, a)
        lq = pw * rho / (1.0 - rho)
        wq = lq / lam[j]
        out.append(
            OpenStationMetrics(
                name=st.name,
                arrival_rate=float(lam[j]),
                utilization=float(rho),
                mean_customers=float(lq + a),
                mean_sojourn=float(wq + mean),
                mean_queue=float(lq),
                mean_wait=float(wq),
            )
        )
    return OpenNetworkSolution(stations=tuple(out))
