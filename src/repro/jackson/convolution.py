"""Buzen's convolution algorithm for closed product-form networks.

This is the steady-state baseline the paper extends (§2): Gordon–Newell
closed networks solved with the normalizing-constant recursion of Buzen
(1973), in its load-dependent form so the cluster models' CPU/disk *banks*
(rate ``n·µ``) and shared ``c``-server stations are both handled.

Validity caveat (why the paper exists): the product form requires
exponential service at FCFS stations; delay (infinite-server) stations are
*insensitive* and may carry any distribution.  The transient model agrees
with these results exactly in those regimes — verified in the test suite —
and generalizes beyond them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec

__all__ = ["ClosedNetworkSolution", "convolution_analysis", "station_rate_factors"]


def station_rate_factors(spec: NetworkSpec, N: int) -> np.ndarray:
    """Load-dependence factors ``a_j(n) = µ_j(n)/µ_j`` for ``n = 1..N``.

    ``min(n, c)`` for a shared ``c``-server station, ``n`` for a delay bank.
    """
    M = spec.n_stations
    out = np.empty((M, N), dtype=float)
    ns = np.arange(1, N + 1, dtype=float)
    for j, st in enumerate(spec.stations):
        if st.is_delay:
            out[j] = ns
        else:
            out[j] = np.minimum(ns, float(st.servers))
    return out


@dataclass(frozen=True)
class ClosedNetworkSolution:
    """Steady-state product-form solution for population ``N``."""

    #: task throughput (completions per unit time)
    throughput: float
    #: mean inter-departure (inter-completion) time, 1/throughput
    interdeparture_time: float
    #: per-station mean customer counts
    queue_means: np.ndarray
    #: per-station marginal distributions, shape (M, N+1)
    marginals: np.ndarray
    #: per-station expected busy servers
    utilizations: np.ndarray


def _station_factors(demand: float, a_row: np.ndarray, N: int) -> np.ndarray:
    """``f_j(n) = d_j^n / Π_{i≤n} a_j(i)`` for ``n = 0..N``."""
    f = np.empty(N + 1)
    f[0] = 1.0
    run = 1.0
    for n in range(1, N + 1):
        run *= demand / a_row[n - 1]
        f[n] = run
    return f


def _convolve(g: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Truncated polynomial product: ``(g * f)[n] = Σ_k g[k] f[n−k]``."""
    N = g.shape[0] - 1
    out = np.zeros(N + 1)
    for n in range(N + 1):
        out[n] = float(g[: n + 1] @ f[n::-1])
    return out


def convolution_analysis(spec: NetworkSpec, N: int) -> ClosedNetworkSolution:
    """Solve the closed equivalent of ``spec`` with ``N`` circulating tasks.

    Visit ratios use the task-completion normalization (``v = entry +
    v·routing``), so the returned throughput is in *task completions* per
    unit time and ``interdeparture_time`` is directly comparable with the
    transient model's ``t_ss``.
    """
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    N = int(N)
    M = spec.n_stations
    visits = spec.visit_ratios()
    means = np.array([st.mean_service for st in spec.stations])
    demands = visits * means
    # Rescale demands to keep G(n) in floating range for large N; the
    # throughput picks up the inverse factor.
    scale = demands.max()
    demands_s = demands / scale
    a = station_rate_factors(spec, N)

    f = [_station_factors(demands_s[j], a[j], N) for j in range(M)]
    g = np.zeros(N + 1)
    g[0] = 1.0
    for j in range(M):
        g = _convolve(g, f[j])
    throughput = (g[N - 1] / g[N]) / scale

    # Marginals: P(n_j = n) = f_j(n) · G_without_j(N − n) / G(N).
    marginals = np.zeros((M, N + 1))
    for j in range(M):
        g_wo = np.zeros(N + 1)
        g_wo[0] = 1.0
        for j2 in range(M):
            if j2 != j:
                g_wo = _convolve(g_wo, f[j2])
        marginals[j] = f[j] * g_wo[::-1] / g[N]
    ns = np.arange(N + 1, dtype=float)
    queue_means = marginals @ ns
    caps = np.array(
        [np.inf if st.is_delay else float(st.servers) for st in spec.stations]
    )
    busy = np.minimum(ns[None, :], caps[:, None])
    utilizations = (marginals * busy).sum(axis=1)
    return ClosedNetworkSolution(
        throughput=float(throughput),
        interdeparture_time=float(1.0 / throughput),
        queue_means=queue_means,
        marginals=marginals,
        utilizations=utilizations,
    )
