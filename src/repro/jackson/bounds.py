"""Classical throughput bounds for closed networks.

The cheapest members of the baseline family: bounds that need only the
service demands.  They bracket the exact solution (verified in the tests
against both the convolution algorithm and the transient model's steady
state) and give the saturation population ``N*`` used throughout
capacity-planning folklore.

* **Asymptotic bounds** (Muntz–Wong / operational analysis):

  .. math::

     X(N) \\le \\min\\!\\big(N / D_{total},\\; 1/D_{max}\\big),
     \\qquad
     X(N) \\ge N / \\big(D_{total} + (N-1) D_{max}\\big),

  where ``D_total = Σ d_j`` over *queueing* demands plus think demand and
  ``D_max`` the largest queueing demand.

* **Balanced-job bounds** (Zahorjan et al.): tighter two-sided bounds
  obtained by comparing with balanced systems.

Both families are exact theory for single-server + delay stations; for
multi-server stations the per-server demand is used, which keeps the
bounds correct in all cases exercised by the test suite but is a
heuristic extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec

__all__ = ["ThroughputBounds", "asymptotic_bounds", "balanced_job_bounds", "saturation_point"]


@dataclass(frozen=True)
class ThroughputBounds:
    """Two-sided throughput bounds at one population."""

    lower: float
    upper: float

    def contains(self, x: float, *, rtol: float = 1e-9) -> bool:
        """Whether a throughput value falls inside the bounds."""
        return self.lower * (1 - rtol) <= x <= self.upper * (1 + rtol)


def _demands(spec: NetworkSpec) -> tuple[float, float, float]:
    """(queueing demand total D, max per-server queueing demand, delay demand Z)."""
    demands = spec.service_demands()
    is_delay = np.array([st.is_delay for st in spec.stations])
    servers = np.array(
        [1.0 if st.is_delay else float(st.servers) for st in spec.stations]
    )
    dq = demands[~is_delay] / servers[~is_delay]
    if dq.size == 0:
        raise ValueError("bounds need at least one queueing station")
    return float(demands[~is_delay].sum()), float(dq.max()), float(demands[is_delay].sum())


def asymptotic_bounds(spec: NetworkSpec, N: int) -> ThroughputBounds:
    """Muntz–Wong asymptotic bounds on task throughput at population ``N``.

    Optimistic: no queueing anywhere (``X ≤ N/(D+Z)``) and the bottleneck
    rate (``X ≤ 1/d_max``).  Pessimistic: every queueing visit waits behind
    all ``N−1`` other tasks (``X ≥ N/(Z + N·D)``).
    """
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    N = int(N)
    D, d_max, Z = _demands(spec)
    upper = min(N / (D + Z), 1.0 / d_max)
    lower = N / (Z + N * D)
    return ThroughputBounds(lower=float(lower), upper=float(upper))


def balanced_job_bounds(spec: NetworkSpec, N: int) -> ThroughputBounds:
    """Balanced-job bounds (tighter than ABA; exact for balanced systems).

    With ``D = Σ d_j`` over queueing stations, ``Z`` the delay (think)
    demand, ``d_avg = D/M`` and ``d_max`` the bottleneck demand (the QSP
    forms, Lazowska et al. ch. 5):

    .. math::

        \\frac{N}{D + Z + (N-1)\\,d_{max}} \\;\\le\\; X(N) \\;\\le\\;
        \\min\\!\\Big(\\frac{1}{d_{max}},\\;
        \\frac{N}{D + Z + (N-1)\\,d_{avg}\\,\\frac{D}{D+Z}}\\Big).
    """
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    N = int(N)
    demands = spec.service_demands()
    is_delay = np.array([st.is_delay for st in spec.stations])
    servers = np.array(
        [1.0 if st.is_delay else float(st.servers) for st in spec.stations]
    )
    dq = demands[~is_delay] / servers[~is_delay]
    if dq.size == 0:
        raise ValueError("bounds need at least one queueing station")
    Z = float(demands[is_delay].sum())
    D = float(dq.sum())
    d_max = float(dq.max())
    d_avg = D / dq.size
    lower = N / (D + Z + (N - 1) * d_max)
    upper = min(N / (D + Z + (N - 1) * d_avg * D / (D + Z)), 1.0 / d_max)
    return ThroughputBounds(lower=float(lower), upper=float(upper))


def saturation_point(spec: NetworkSpec) -> float:
    """The population ``N* = (D + Z)/d_max`` where the asymptotes cross."""
    demands = spec.service_demands()
    is_delay = np.array([st.is_delay for st in spec.stations])
    servers = np.array(
        [1.0 if st.is_delay else float(st.servers) for st in spec.stations]
    )
    dq = demands[~is_delay] / servers[~is_delay]
    if dq.size == 0:
        raise ValueError("saturation point needs a queueing station")
    return float(demands.sum() / dq.max())
