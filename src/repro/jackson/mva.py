"""Exact Mean Value Analysis for closed product-form networks.

Reiser–Lavenberg's recursion, restricted to the station kinds it is exact
for: single-server FCFS stations and delay (infinite-server) banks.  It
computes the same quantities as :mod:`repro.jackson.convolution` without
normalizing constants and serves as an independent implementation for
cross-checking the baseline (the two must agree to numerical precision).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.spec import NetworkSpec

__all__ = ["MVASolution", "mva_analysis"]


@dataclass(frozen=True)
class MVASolution:
    """Steady-state metrics from exact MVA at population ``N``."""

    throughput: float
    interdeparture_time: float
    #: per-station mean customer counts
    queue_means: np.ndarray
    #: per-station mean residence time per *visit*
    residence_times: np.ndarray


def mva_analysis(spec: NetworkSpec, N: int) -> MVASolution:
    """Run the exact MVA recursion for populations ``1..N``.

    Raises
    ------
    ValueError
        If any station is a finite multi-server (``1 < c < ∞``): plain MVA
        is not exact there, use :func:`repro.jackson.convolution_analysis`.
    """
    if N < 1 or int(N) != N:
        raise ValueError(f"N must be a positive integer, got {N!r}")
    N = int(N)
    for st in spec.stations:
        if not st.is_delay and st.servers != 1:
            raise ValueError(
                f"station {st.name!r} has {st.servers} servers; exact MVA here "
                "supports only single-server and delay stations"
            )
    visits = spec.visit_ratios()
    means = np.array([st.mean_service for st in spec.stations])
    is_delay = np.array([st.is_delay for st in spec.stations])

    L = np.zeros(spec.n_stations)
    X = 0.0
    R = means.copy()
    for n in range(1, N + 1):
        R = np.where(is_delay, means, means * (1.0 + L))
        X = n / float(visits @ R)
        L = X * visits * R
    return MVASolution(
        throughput=float(X),
        interdeparture_time=float(1.0 / X),
        queue_means=L,
        residence_times=R,
    )
