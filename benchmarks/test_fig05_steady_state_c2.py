"""Figure 5: steady-state inter-departure time vs C², K=8, two load levels.

Paper shape: under contention the steady state depends on the shared
server's C²; without contention the curve is flat (insensitivity).

Documented deviation: the paper reports a *minimum* in the contention
curve before it rises; with every H2 completion rule implemented here
(balanced means, fixed-p, pdf(0), third moment) the curve is monotone
increasing — see EXPERIMENTS.md and the H2-fitting ablation.
"""

import numpy as np

from repro.experiments import fig05


def test_fig05_steady_state_c2(benchmark, record):
    result = benchmark.pedantic(fig05.run, rounds=1, iterations=1)
    record(result)

    cont = result.series["contention"]
    none = result.series["no_contention"]
    # Contention curve responds to C²...
    assert cont[-1] > cont[0] * 1.05
    # ...the uncontended one barely moves (within ~3%).
    assert none.max() / none.min() < 1.03
    # Light load runs near the ideal 12/K.
    assert np.allclose(none, 1.5, rtol=0.03)
    # Contention always costs.
    assert np.all(cont > none)
