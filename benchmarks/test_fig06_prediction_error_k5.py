"""Figure 6: exponential-assumption error vs C², K=5 distributed cluster.

Paper shape: error is zero at C²=1, grows monotonically with C², and
already exceeds 20 % at C²=10 (the paper's headline number).
"""

import numpy as np

from repro.experiments import fig06


def test_fig06_prediction_error_k5(benchmark, record):
    result = benchmark.pedantic(fig06.run, rounds=1, iterations=1)
    record(result)

    for s in result.series.values():
        assert s[0] == 0.0
        assert np.all(np.diff(s) > 0)  # "always increases with increasing C²"
    # >20% at C² = 10 (x = [1, 5, 10, ...] → index 2).
    assert result.x[2] == 10.0
    assert result.series["N=30"][2] > 20.0
