"""Ablation: three-region approximation (ref [17]) vs the exact recursion.

The approximation replaces the O(N) epoch loop with O(head + K) solves;
this benchmark measures both its speed and its accuracy as N grows.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel, approximate_makespan, solve_steady_state
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

K = 5
N_BIG = 2000


@pytest.fixture(scope="module")
def model():
    spec = central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})
    m = TransientModel(spec, K)
    m.level(K)
    return m


@pytest.mark.benchmark(group="approximation")
def test_exact_makespan_large_N(benchmark, model):
    span = benchmark(model.makespan, N_BIG)
    assert span > 0


@pytest.mark.benchmark(group="approximation")
def test_approximate_makespan_large_N(benchmark, model, record_text):
    steady = solve_steady_state(model)
    approx = benchmark(
        lambda: approximate_makespan(model, N_BIG, steady=steady).total
    )
    exact = model.makespan(N_BIG)
    rel_err = abs(approx - exact) / exact
    assert rel_err < 1e-4

    rows = [f"N={N_BIG}: exact={exact:.4f}, approx={approx:.4f}, rel err={rel_err:.2e}"]
    for n in (10, 30, 100, 300):
        e = model.makespan(n)
        a = approximate_makespan(model, n, steady=steady).total
        rows.append(f"N={n}: exact={e:.4f}, approx={a:.4f}, rel err={abs(a - e) / e:.2e}")
    record_text("ablation_approximation", "\n".join(rows))
