"""Figure 9: speedup vs shared-server C², K=8, N ∈ {30, 100} (as Fig. 8)."""

import numpy as np

from repro.experiments import fig09


def test_fig09_speedup_k8(benchmark, record):
    result = benchmark.pedantic(fig09.run, rounds=1, iterations=1)
    record(result)

    n30, n100 = result.series["N=30"], result.series["N=100"]
    assert np.all(np.diff(n30) < 0)
    assert np.all(np.diff(n100) < 0)
    assert np.all(n100 > n30)
    assert np.all(n100 <= 8.0)
