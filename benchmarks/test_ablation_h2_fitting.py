"""Ablation: the H2 third-parameter rule (paper §5.4.2 leaves it open).

Mean + C² underdetermine an H2; the paper lists fixing p, matching the
third moment, or fitting pdf(0).  This sweep regenerates the Fig. 5
contention curve under each completion rule to quantify how much the
choice matters — and documents that none of them produces the paper's
non-monotone dip (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel, solve_steady_state
from repro.distributions import Shape
from repro.experiments.params import BASE_APP
from repro.experiments.result import ExperimentResult

K = 8
SCVS = np.array([2.0, 5.0, 10.0, 20.0, 50.0])

METHODS = {
    "balanced": {},
    "fixed_p(0.02)": {"method": "fixed_p", "p": 0.02},
    "moment3": {"method": "moment3"},
}


def _sweep():
    series = {}
    for label, kw in METHODS.items():
        method = kw.get("method", "balanced")
        extra = {k: v for k, v in kw.items() if k != "method"}
        ts = []
        for scv in SCVS:
            spec = central_cluster(
                BASE_APP, {"rdisk": Shape.hyperexp(float(scv), method, **extra)}
            )
            ts.append(
                solve_steady_state(TransientModel(spec, K)).interdeparture_time
            )
        series[label] = np.array(ts)
    return ExperimentResult(
        experiment="ablation_h2_fitting",
        description="steady-state inter-departure vs C² per H2 completion rule, K=8",
        x_label="C2",
        x=SCVS,
        series=series,
    )


def test_ablation_h2_fitting(benchmark, record):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record(result)

    for label, s in result.series.items():
        # Every completion rule yields a monotone increasing curve.
        assert np.all(np.diff(s) > 0), label
    # The rule choice matters: curves diverge at high C².
    hi = np.array([s[-1] for s in result.series.values()])
    assert hi.max() / hi.min() > 1.05
