"""Validation benchmark: the analytic model vs the DES ground truth.

Regenerates the Figure-3 configuration with the discrete-event simulator
(replicated, 99% CIs) and checks that every exact epoch mean falls inside
its interval — the reproduction's end-to-end correctness gate — while
timing both paths.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP
from repro.simulation import simulate_study

K, N, REPS = 5, 30, 3000


@pytest.fixture(scope="module")
def spec():
    return central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})


@pytest.mark.benchmark(group="model-vs-simulation")
def test_analytic_model(benchmark, spec):
    times = benchmark(lambda: TransientModel(spec, K).interdeparture_times(N))
    assert times.shape == (N,)


@pytest.mark.benchmark(group="model-vs-simulation")
def test_simulation_ground_truth(benchmark, spec, record_text):
    study = benchmark.pedantic(
        lambda: simulate_study(spec, K, N, reps=REPS, seed=2004),
        rounds=1,
        iterations=1,
    )
    exact = TransientModel(spec, K).interdeparture_times(N)
    hw = np.maximum(study.epoch_halfwidths, 0.02 * exact)
    outside = np.abs(exact - study.epoch_means) > hw
    assert outside.sum() <= 1  # 99% CIs, 30 epochs

    lines = [
        f"{REPS} replications, H2(C2=10) shared remote disk, K={K}, N={N}",
        f"{'epoch':>6} {'exact':>10} {'sim':>10} {'ci±':>8}",
    ]
    lines += [
        f"{i + 1:>6} {exact[i]:>10.4f} {study.epoch_means[i]:>10.4f} "
        f"{study.epoch_halfwidths[i]:>8.4f}"
        for i in range(N)
    ]
    record_text("validation_simulation", "\n".join(lines))
