"""BENCH_serve.json emitter: warm-vs-cold solve latency and throughput.

Times the solver-as-a-service path on the fig04-class workload (central
cluster, shared disk C² = 10, K=8, N=60 — D(8) = 285):

* ``serve_fig04_cold`` — every solve builds its model from scratch
  (a fresh :class:`~repro.serve.cache.ModelCache` per repeat);
* ``serve_fig04_warm`` — every solve hits one warm cache entry;
* ``serve_many_fig04`` — a 24-query mixed batch (duplicates + an
  N-sweep) through ``solve_many``; queries/second lands in ``meta``.

The records merge into ``benchmarks/results/BENCH_serve.json`` under the
same ``repro-bench-transient/1`` schema the transient bench uses (stage
breakdowns empty — the cache path is one span deep), so
``check_bench_regression.py --min-speedup serve_fig04_cold:serve_fig04_warm:5``
gates the ISSUE 9 acceptance ratio in CI: **warm ≥ 5× cold**, a relative
property that holds across machines while absolute walls drift.
"""

from __future__ import annotations

import statistics
import time

from repro.clusters import ApplicationModel, central_cluster
from repro.distributions import Shape
from repro.obs.profile import validate_bench, write_bench
from repro.serve import ModelCache, Query, SolverService

REPEATS = 5
K, N = 8, 60
SOURCE = "benchmarks/test_bench_serve.py"


def _spec():
    return central_cluster(ApplicationModel(), {"rdisk": Shape.scv(10.0)})


def _query(n: int = N, metric: str = "makespan") -> Query:
    return Query(spec=_spec(), K=K, N=n, metric=metric)


def _record(name: str, walls: list[float], makespan: float,
            meta: dict | None = None) -> dict:
    return {
        "name": name,
        "K": K,
        "N": N,
        "repeats": len(walls),
        "level_dims": [],
        "makespan": makespan,
        "wall_seconds": {
            "median": statistics.median(walls),
            "min": min(walls),
            "max": max(walls),
            "runs": [round(w, 6) for w in walls],
        },
        "stages": {},
        **({"meta": meta} if meta else {}),
    }


def _time(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_bench_serve_warm_vs_cold(results_dir, record_text):
    cold_walls, warm_walls = [], []
    makespan = 0.0

    for _ in range(REPEATS):
        service = SolverService(cache=ModelCache())  # cold: fresh cache
        wall, answer = _time(lambda: service.solve(_query()))
        cold_walls.append(wall)
        makespan = answer.value

    warm_service = SolverService(cache=ModelCache())
    baseline = warm_service.solve(_query())  # prime once
    assert baseline.value == makespan  # warm path answers the same bits
    for _ in range(REPEATS):
        wall, answer = _time(lambda: warm_service.solve(_query()))
        warm_walls.append(wall)
        assert answer.cached
        assert answer.value == makespan

    cold_med = statistics.median(cold_walls)
    warm_med = statistics.median(warm_walls)
    speedup = cold_med / warm_med
    assert speedup >= 5.0, (
        f"warm solve only {speedup:.1f}x faster than cold "
        f"({warm_med * 1e3:.2f} ms vs {cold_med * 1e3:.2f} ms); "
        "the cache is not amortizing the build"
    )

    path = write_bench(
        results_dir / "BENCH_serve.json",
        [
            _record("serve_fig04_cold", cold_walls, makespan),
            _record("serve_fig04_warm", warm_walls, makespan,
                    meta={"speedup_vs_cold": round(speedup, 2)}),
        ],
        source=SOURCE,
    )
    validate_bench(path)
    record_text(
        "bench_serve_warm_vs_cold",
        f"cold median {cold_med * 1e3:.2f} ms | "
        f"warm median {warm_med * 1e3:.2f} ms | speedup {speedup:.1f}x",
    )


def test_bench_solve_many_throughput(results_dir, record_text):
    batch = (
        [_query() for _ in range(8)]                      # dedupe block
        + [_query(n) for n in range(10, 70, 10)]          # N-sweep, 1 model
        + [_query(metric="interdeparture") for _ in range(4)]
        + [_query(n, "departure") for n in (20, 40, 20, 40, 20, 40)]
    )
    service = SolverService(cache=ModelCache())
    service.solve_many(batch)  # prime the single model

    walls = []
    for _ in range(REPEATS):
        wall, answers = _time(lambda: service.solve_many(batch))
        walls.append(wall)
        assert len(answers) == len(batch)
        assert all(a.cached or a.deduped for a in answers)

    med = statistics.median(walls)
    qps = len(batch) / med
    path = write_bench(
        results_dir / "BENCH_serve.json",
        [_record("serve_many_fig04", walls,
                 float(service.solve(_query()).value),
                 meta={"batch_queries": len(batch),
                       "queries_per_second": round(qps, 1)})],
        source=SOURCE,
    )
    doc = validate_bench(path)
    names = {w["name"] for w in doc["workloads"]}
    assert "serve_many_fig04" in names
    record_text(
        "bench_serve_solve_many",
        f"{len(batch)} queries in {med * 1e3:.2f} ms warm "
        f"({qps:,.0f} q/s)",
    )


def test_bench_serve_file_feeds_regression_gate(results_dir):
    """The emitted file passes the exact CI invocation."""
    import subprocess
    import sys
    from pathlib import Path

    path = results_dir / "BENCH_serve.json"
    if not path.exists():
        import pytest

        pytest.skip("emitters did not run in this session")
    script = Path(__file__).parent / "check_bench_regression.py"
    out = subprocess.run(
        [sys.executable, str(script), str(path), str(path),
         "--min-speedup", "serve_fig04_cold:serve_fig04_warm:5"],
        capture_output=True, text=True,
    )
    assert out.returncode == 0, out.stdout + out.stderr
    assert "serve_fig04_cold" in out.stdout
