"""Figure 8: speedup vs shared-server C², K=5, N ∈ {30, 100}.

Paper shape: speedup decreases monotonically with C²; the
steady-state-dominated workload (N=100) outperforms the
transient-dominated one (N=30) everywhere.
"""

import numpy as np

from repro.experiments import fig08


def test_fig08_speedup_k5(benchmark, record):
    result = benchmark.pedantic(fig08.run, rounds=1, iterations=1)
    record(result)

    n30, n100 = result.series["N=30"], result.series["N=100"]
    assert np.all(np.diff(n30) < 0)
    assert np.all(np.diff(n100) < 0)
    assert np.all(n100 > n30)
    assert np.all(n30 <= 5.0)  # bounded by K
