"""Ablation: classical residual-corrected AMVA vs the exact steady state.

What did practitioners have *before* an exact non-exponential treatment?
Approximate MVA with a P–K residual charge.  This sweep quantifies its
error against the exact `t_ss` over the shared server's C²: fine under
mild variability, catastrophically pessimistic as C² grows — the
open-queue heuristic misses the closed network's self-limiting feedback.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel, solve_steady_state
from repro.distributions import Shape
from repro.experiments.params import BASE_APP
from repro.experiments.result import ExperimentResult

K = 5
SCVS = np.array([1.0, 2.0, 5.0, 10.0, 20.0, 50.0])


def _sweep():
    from repro.jackson import amva_analysis

    exact = np.empty(SCVS.shape[0])
    approx = np.empty(SCVS.shape[0])
    for i, scv in enumerate(SCVS):
        shapes = {} if scv == 1.0 else {"rdisk": Shape.hyperexp(float(scv))}
        spec = central_cluster(BASE_APP, shapes)
        exact[i] = solve_steady_state(TransientModel(spec, K)).interdeparture_time
        approx[i] = amva_analysis(spec, K).interdeparture_time
    return ExperimentResult(
        experiment="ablation_amva",
        description=f"exact t_ss vs residual-corrected AMVA over shared-server C², K={K}",
        x_label="C2",
        x=SCVS,
        series={
            "exact": exact,
            "amva": approx,
            "error_pct": (approx - exact) / exact * 100.0,
        },
    )


def test_ablation_amva(benchmark, record):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record(result)

    err = result.series["error_pct"]
    assert err[0] == pytest.approx(0.0, abs=1e-6)  # exact at C²=1
    assert np.all(np.diff(err) > 0)  # degrades monotonically
    assert err[-1] > 100.0  # >2x off at C²=50
