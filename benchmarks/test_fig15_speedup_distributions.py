"""Figure 15: speedup vs cluster size at N=100, CPU ∈ {Exp, E2, H2 C²=2}.

Paper shape: the exponential curve approximates the Erlang one closely and
overestimates the Hyperexponential one.
"""

import numpy as np

from repro.experiments import fig15


def test_fig15_speedup_distributions(benchmark, record):
    result = benchmark.pedantic(fig15.run, rounds=1, iterations=1)
    record(result)

    exp, e2, h2 = result.series["exp"], result.series["E2"], result.series["H2(C2=2)"]
    # Exponential ≈ Erlang-2 (within 2%)...
    assert np.allclose(exp, e2, rtol=0.02)
    # ...but overestimates H2 at every K > 1.
    assert np.all(exp[1:] > h2[1:])
    for s in result.series.values():
        assert np.all(np.diff(s) > 0)
