"""Figure 3: inter-departure vs task order, N=30, K=5 central cluster.

Paper shape: three visible regions; the H2 shared-server curves sit above
the exponential one at steady state, more so for larger C²; draining
epochs climb at the tail.
"""

import numpy as np

from repro.experiments import fig03


def test_fig03_interdeparture_k5(benchmark, record):
    result = benchmark.pedantic(fig03.run, rounds=1, iterations=1)
    record(result)

    exp = result.series["exp"]
    h10 = result.series["H2(C2=10)"]
    h50 = result.series["H2(C2=50)"]
    mid = 15  # deep inside the steady-state region
    # Steady-state ordering by C² (paper Fig. 3).
    assert exp[mid] < h10[mid] < h50[mid]
    # Steady plateau is flat.
    assert np.isclose(exp[mid], exp[mid + 5], rtol=1e-6)
    # Draining region: the last K epochs rise monotonically.
    for s in result.series.values():
        drain = s[-5:]
        assert np.all(np.diff(drain) > 0)
    # Warm-up: first epoch is the fastest (system fills fresh).
    assert np.argmin(exp) == 0
