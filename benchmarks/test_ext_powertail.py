"""Extension benchmark: power-tail shared service (the paper's §1 motivation).

Not a figure of the paper — the experiment its introduction calls for:
what the Leland/Ott–Crovella power-tail observations do to a cluster, and
how badly the exponential assumption misses it.
"""

import numpy as np

from repro.experiments import ext_powertail


def test_ext_powertail(benchmark, record):
    result = benchmark.pedantic(ext_powertail.run, rounds=1, iterations=1)
    record(result)

    scv, t_ss, err = (
        result.series["scv"],
        result.series["t_ss"],
        result.series["error_pct"],
    )
    # Deeper truncation ⇒ heavier tail ⇒ larger effective C².
    assert np.all(np.diff(scv) > 0)
    assert scv[-1] > 100.0
    # m = 1 is exponential: zero error by construction.
    assert err[0] == 0.0
    # Both the steady state and the modeling error degrade monotonically.
    assert np.all(np.diff(t_ss) > 0)
    assert np.all(np.diff(err) > 0)
