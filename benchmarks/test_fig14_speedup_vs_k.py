"""Figure 14: speedup vs cluster size, exponential service, N ∈ {20, 100, 200}.

Paper shape: all curves grow with K; small workloads flatten early because
the transient/draining regions dominate ("if the system is working in the
transient region, the speedup is much less").
"""

import numpy as np

from repro.experiments import fig14


def test_fig14_speedup_vs_k(benchmark, record):
    result = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    record(result)

    n20, n100, n200 = (
        result.series["N=20"],
        result.series["N=100"],
        result.series["N=200"],
    )
    for s in (n20, n100, n200):
        assert s[0] == 1.0
        assert np.all(np.diff(s) > 0)
    # Larger workloads dominate pointwise (more steady-state time).
    assert np.all(n200 >= n100 - 1e-12)
    assert np.all(n100 >= n20 - 1e-12)
    # N=20 visibly flattens: its K=10 gain is far below linear.
    assert n20[-1] < 6.0
    assert n200[-1] > 8.0
