"""Figure 13: exponential-assumption error for dedicated CPUs, K=8 (as Fig. 12)."""

from repro.experiments import fig13


def test_fig13_prediction_error_dedicated_k8(benchmark, record):
    result = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    record(result)

    e = result.series["N=30"]
    assert e[0] < 0.0 and e[1] < 0.0
    assert e[2] == 0.0
    assert e[4] > e[3] > 0.0
    assert e[4] > 20.0
