"""Figure 12: exponential-assumption error for dedicated CPUs, K=5.

Paper shape: small negative error for Erlangian applications (C² < 1 —
"the exponential distribution can be considered a good approximation"),
zero at C²=1, large positive and growing above it.
"""

from repro.experiments import fig12


def test_fig12_prediction_error_dedicated_k5(benchmark, record):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    record(result)

    e = result.series["N=30"]
    # x = [1/3, 1/2, 1, 5, 10]
    assert -10.0 < e[0] < 0.0
    assert -10.0 < e[1] < 0.0
    assert abs(e[0]) > abs(e[1])  # further from exponential → bigger |error|
    assert e[2] == 0.0
    assert e[3] > 5.0
    assert e[4] > e[3] > 0.0
    assert e[4] > 20.0  # paper: exceeds 20% at C² = 10
