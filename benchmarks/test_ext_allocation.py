"""Extension benchmark: data placement vs disk heterogeneity (ref [15] use-case)."""

import numpy as np

from repro.experiments import ext_allocation


def test_ext_allocation(benchmark, record):
    result = benchmark.pedantic(ext_allocation.run, rounds=1, iterations=1)
    record(result)

    uni = result.series["uniform"]
    bal = result.series["load_balanced"]
    hot = result.series["hotspot_90pct"]
    # Speed-proportional placement never loses to uniform.
    assert np.all(bal <= uni + 1e-9)
    # Homogeneous disks: concentrating data is clearly worst.
    assert hot[0] > uni[0] * 1.2
    # High skew: the fast disk absorbs the work — hot-spot wins.
    assert hot[-1] < bal[-1]
    # So the policies cross: placement must adapt to the hardware.
    crossed = np.any((hot[:-1] > bal[:-1]) & (hot[1:] <= bal[1:]))
    assert crossed
