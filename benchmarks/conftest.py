"""Benchmark-suite fixtures.

Every figure benchmark regenerates the paper data through
``repro.experiments`` and records the emitted table under
``benchmarks/results/`` so the rows survive pytest's output capture; the
shape assertions inside each benchmark are the reproduction criteria
(EXPERIMENTS.md summarizes paper-vs-measured).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Write an ExperimentResult's table to results/<experiment>.txt."""

    def _record(result, name: str | None = None):
        path = results_dir / f"{name or result.experiment}.txt"
        path.write_text(result.format_table() + "\n")
        return result

    return _record


@pytest.fixture
def record_text(results_dir):
    """Write free-form benchmark output to results/<name>.txt."""

    def _record(name: str, text: str):
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
