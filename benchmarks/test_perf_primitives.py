"""Performance tracking of the solver's primitive operations.

Not a reproduction target — a regression harness for the costs that
matter (the optimization guide's "no optimization without measuring"):
level construction, LU factorization, one epoch step, and the steady-state
solve, on a representative stage-expanded system.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel, solve_steady_state
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

K = 8


def _fresh_model():
    spec = central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})
    return TransientModel(spec, K)


@pytest.fixture(scope="module")
def warm_model():
    model = _fresh_model()
    top = model.level(K)
    _ = top.lu, top.tau  # force factorization
    return model


@pytest.mark.benchmark(group="primitives")
def test_perf_level_build(benchmark):
    """Assemble M_K, P_K, Q_K, R_K from scratch."""
    def build():
        return _fresh_model().level(K).dim

    dim = benchmark(build)
    # C(11,8)=165 compositions, plus an extra in-service-stage state for
    # each of the C(10,7)=120 compositions with a busy H2 remote disk.
    assert dim == 285


@pytest.mark.benchmark(group="primitives")
def test_perf_epoch_step(benchmark, warm_model):
    """One backlogged epoch: x ← x·Y_K·R_K (one sparse LU solve)."""
    top = warm_model.level(K)
    x = warm_model.entrance_vector(K)
    y = benchmark(top.apply_YR, x)
    assert y.sum() == pytest.approx(1.0)


@pytest.mark.benchmark(group="primitives")
def test_perf_full_transient_solve(benchmark, warm_model):
    """All 30 epochs of the Figure-4 configuration (operators cached)."""
    times = benchmark(warm_model.interdeparture_times, 30)
    assert times.shape == (30,)


@pytest.mark.benchmark(group="primitives")
def test_perf_steady_state(benchmark, warm_model):
    """Power iteration to the stationary mix."""
    ss = benchmark(lambda: solve_steady_state(warm_model).interdeparture_time)
    assert np.isfinite(ss)
