"""Ablation: sparse-LU operator application vs dense V_k / Y_k.

The design decision under test (DESIGN.md §4.1): the epoch recursion never
forms ``V_k`` or ``Y_k`` densely.  Both paths must agree exactly; the
benchmark quantifies the cost of the dense alternative.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

K, N = 6, 40


@pytest.fixture(scope="module")
def model():
    spec = central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})
    m = TransientModel(spec, K)
    m.level(K)  # prebuild so only the epoch math is timed
    return m


def _epochs_sparse(model):
    return model.interdeparture_times(N)


def _epochs_dense(model):
    """Same recursion with explicitly formed dense Y_k / V_k."""
    top = model.level(K)
    Y = {k: model.level(k).dense_Y() for k in range(1, K + 1)}
    tau = {k: model.level(k).dense_V() @ np.ones(model.level(k).dim) for k in range(1, K + 1)}
    R = top.R.toarray()
    x = model.entrance_vector(K)
    times = np.empty(N)
    for j in range(N - K):
        times[j] = x @ tau[K]
        x = (x @ Y[K]) @ R
    at = N - K
    for k in range(K, 0, -1):
        times[at] = x @ tau[k]
        at += 1
        if k > 1:
            x = x @ Y[k]
    return times


@pytest.mark.benchmark(group="sparse-vs-dense")
def test_sparse_operator_path(benchmark, model):
    times = benchmark(_epochs_sparse, model)
    assert times.shape == (N,)


@pytest.mark.benchmark(group="sparse-vs-dense")
def test_dense_operator_path(benchmark, model, record_text):
    dense = benchmark.pedantic(_epochs_dense, args=(model,), rounds=1, iterations=1)
    sparse = _epochs_sparse(model)
    assert np.allclose(dense, sparse, rtol=1e-9)
    record_text(
        "ablation_sparse_vs_dense",
        f"K={K}, N={N}, top-level dim={model.level_dim(K)}\n"
        "dense and sparse epoch sequences agree to 1e-9 (see pytest-benchmark "
        "table for timing)",
    )
