#!/usr/bin/env python
"""CI gate: compare a fresh BENCH_transient.json against the seeded baseline.

For every workload present in both files, the chosen stage's
``median_self_seconds`` must not exceed ``--max-ratio`` times the baseline
value.  Exits nonzero (failing the CI job) on regression or when the two
files share no comparable workload.

Usage::

    python benchmarks/check_bench_regression.py FRESH BASELINE \
        [--stage build_level] [--max-ratio 1.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(
    fresh: dict, baseline: dict, stage: str, max_ratio: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for the shared workloads."""
    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    lines: list[str] = []
    failures: list[str] = []
    for w in fresh.get("workloads", []):
        ref = base_by_name.get(w["name"])
        if ref is None:
            continue
        st = w.get("stages", {}).get(stage)
        st_ref = ref.get("stages", {}).get(stage)
        if not st or not st_ref:
            continue
        cur = float(st["median_self_seconds"])
        old = float(st_ref["median_self_seconds"])
        ratio = cur / old if old > 0 else float("inf")
        line = (
            f"{w['name']}: {stage} {cur * 1e3:.3f} ms vs baseline "
            f"{old * 1e3:.3f} ms ({ratio:.2f}x)"
        )
        lines.append(line)
        if ratio > max_ratio:
            failures.append(line)
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", type=Path, help="freshly produced BENCH_transient.json")
    ap.add_argument("baseline", type=Path, help="seeded baseline BENCH_transient.json")
    ap.add_argument("--stage", default="build_level", help="stage to gate on")
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.2,
        help="fail when fresh/baseline exceeds this (default 1.2)",
    )
    args = ap.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    lines, failures = compare(fresh, baseline, args.stage, args.max_ratio)
    for line in lines:
        print(line)
    if not lines:
        print(
            f"no workload in {args.fresh} has stage {args.stage!r} in common "
            f"with {args.baseline}",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(
            f"REGRESSION: {len(failures)} workload(s) over {args.max_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(f"OK: all {len(lines)} workload(s) within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
