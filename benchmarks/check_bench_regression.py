#!/usr/bin/env python
"""CI gate: compare a fresh BENCH_transient.json against the seeded baseline.

For every workload present in both files, each gated stage's
``median_self_seconds`` must not exceed ``--max-ratio`` times the baseline
value.  By default the gate covers the three load-bearing stages of the
transient solve — ``build_level``, ``epoch`` and ``factorize`` — pass
``--stage`` (repeatable) to gate a different set.  Readings below
``--floor-seconds`` never fail: at sub-millisecond medians the ratio is
dominated by timer and scheduler noise, not by code.

Exits nonzero (failing the CI job) on regression or when the two files
share no comparable workload/stage pair.

Usage::

    python benchmarks/check_bench_regression.py FRESH BASELINE \
        [--stage epoch --stage factorize] [--max-ratio 1.2] \
        [--floor-seconds 0.001]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_STAGES = ("build_level", "epoch", "factorize")


def compare(
    fresh: dict,
    baseline: dict,
    stages: list[str],
    max_ratio: float,
    floor_seconds: float = 0.0,
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for the shared workloads."""
    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    lines: list[str] = []
    failures: list[str] = []
    for w in fresh.get("workloads", []):
        ref = base_by_name.get(w["name"])
        if ref is None:
            continue
        for stage in stages:
            st = w.get("stages", {}).get(stage)
            st_ref = ref.get("stages", {}).get(stage)
            if not st or not st_ref:
                continue
            cur = float(st["median_self_seconds"])
            old = float(st_ref["median_self_seconds"])
            ratio = cur / old if old > 0 else float("inf")
            line = (
                f"{w['name']}: {stage} {cur * 1e3:.3f} ms vs baseline "
                f"{old * 1e3:.3f} ms ({ratio:.2f}x)"
            )
            if ratio > max_ratio and cur <= floor_seconds:
                line += "  [below floor, not gated]"
            lines.append(line)
            if ratio > max_ratio and cur > floor_seconds:
                failures.append(line)
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", type=Path, help="freshly produced BENCH_transient.json")
    ap.add_argument("baseline", type=Path, help="seeded baseline BENCH_transient.json")
    ap.add_argument(
        "--stage",
        action="append",
        dest="stages",
        default=None,
        help="stage to gate on (repeatable; default: "
        + ", ".join(DEFAULT_STAGES) + ")",
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.2,
        help="fail when fresh/baseline exceeds this (default 1.2)",
    )
    ap.add_argument(
        "--floor-seconds",
        type=float,
        default=1e-3,
        help="stage medians at or below this never fail the gate "
        "(default 1e-3: sub-ms readings are timer noise)",
    )
    args = ap.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    stages = list(args.stages) if args.stages else list(DEFAULT_STAGES)
    lines, failures = compare(
        fresh, baseline, stages, args.max_ratio, args.floor_seconds
    )
    for line in lines:
        print(line)
    if not lines:
        print(
            f"no workload in {args.fresh} has any of stages {stages!r} in "
            f"common with {args.baseline}",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(
            f"REGRESSION: {len(failures)} stage reading(s) over "
            f"{args.max_ratio:.2f}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: all {len(lines)} stage reading(s) within "
        f"{args.max_ratio:.2f}x of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
