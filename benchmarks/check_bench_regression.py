#!/usr/bin/env python
"""CI gate: compare a fresh BENCH_transient.json against the seeded baseline.

For every workload present in both files, each gated stage's
``median_self_seconds`` must not exceed ``--max-ratio`` times the baseline
value.  By default the gate covers the three load-bearing stages of the
transient solve — ``build_level``, ``epoch`` and ``factorize`` — pass
``--stage`` (repeatable) to gate a different set.  Readings below
``--floor-seconds`` never fail: at sub-millisecond medians the ratio is
dominated by timer and scheduler noise, not by code.

``--min-speedup SLOW:FAST:RATIO`` (repeatable) additionally asserts a
*relative* perf property inside the FRESH file alone: workload ``SLOW``'s
median wall time must be at least ``RATIO`` times workload ``FAST``'s.
This is how CI pins the spectral engine's N-free refill — e.g.
``--min-speedup fig03_n10k_propagator:fig03_n10k_spectral:10`` fails the
job if the closed-form makespan ever drops under 10x the stepped one.

Exits nonzero (failing the CI job) on regression or when the two files
share no comparable workload/stage pair.

Usage::

    python benchmarks/check_bench_regression.py FRESH BASELINE \
        [--stage epoch --stage factorize] [--max-ratio 1.2] \
        [--floor-seconds 0.001] [--min-speedup SLOW:FAST:RATIO]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_STAGES = ("build_level", "epoch", "factorize")


def compare(
    fresh: dict,
    baseline: dict,
    stages: list[str],
    max_ratio: float,
    floor_seconds: float = 0.0,
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for the shared workloads."""
    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    lines: list[str] = []
    failures: list[str] = []
    for w in fresh.get("workloads", []):
        ref = base_by_name.get(w["name"])
        if ref is None:
            continue
        for stage in stages:
            st = w.get("stages", {}).get(stage)
            st_ref = ref.get("stages", {}).get(stage)
            if not st or not st_ref:
                continue
            cur = float(st["median_self_seconds"])
            old = float(st_ref["median_self_seconds"])
            ratio = cur / old if old > 0 else float("inf")
            line = (
                f"{w['name']}: {stage} {cur * 1e3:.3f} ms vs baseline "
                f"{old * 1e3:.3f} ms ({ratio:.2f}x)"
            )
            if ratio > max_ratio and cur <= floor_seconds:
                line += "  [below floor, not gated]"
            lines.append(line)
            if ratio > max_ratio and cur > floor_seconds:
                failures.append(line)
    return lines, failures


def check_speedups(
    fresh: dict, specs: list[str]
) -> tuple[list[str], list[str]]:
    """Gate ``SLOW:FAST:RATIO`` wall-time speedups inside the fresh file."""
    by_name = {w["name"]: w for w in fresh.get("workloads", [])}
    lines: list[str] = []
    failures: list[str] = []
    for spec in specs:
        try:
            slow_name, fast_name, ratio_text = spec.split(":")
            want = float(ratio_text)
        except ValueError:
            raise SystemExit(
                f"--min-speedup must be SLOW:FAST:RATIO, got {spec!r}"
            )
        slow = by_name.get(slow_name)
        fast = by_name.get(fast_name)
        if slow is None or fast is None:
            missing = slow_name if slow is None else fast_name
            failures.append(
                f"speedup {spec}: workload {missing!r} missing from fresh file"
            )
            continue
        slow_s = float(slow["wall_seconds"]["median"])
        fast_s = float(fast["wall_seconds"]["median"])
        got = slow_s / fast_s if fast_s > 0 else float("inf")
        line = (
            f"speedup {slow_name} / {fast_name}: "
            f"{slow_s * 1e3:.3f} ms / {fast_s * 1e3:.3f} ms = {got:.1f}x "
            f"(gate: >= {want:g}x)"
        )
        lines.append(line)
        if got < want:
            failures.append(line)
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", type=Path, help="freshly produced BENCH_transient.json")
    ap.add_argument("baseline", type=Path, help="seeded baseline BENCH_transient.json")
    ap.add_argument(
        "--stage",
        action="append",
        dest="stages",
        default=None,
        help="stage to gate on (repeatable; default: "
        + ", ".join(DEFAULT_STAGES) + ")",
    )
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.2,
        help="fail when fresh/baseline exceeds this (default 1.2)",
    )
    ap.add_argument(
        "--floor-seconds",
        type=float,
        default=1e-3,
        help="stage medians at or below this never fail the gate "
        "(default 1e-3: sub-ms readings are timer noise)",
    )
    ap.add_argument(
        "--min-speedup",
        action="append",
        dest="speedups",
        default=None,
        metavar="SLOW:FAST:RATIO",
        help="require fresh workload SLOW's median wall time to be at "
        "least RATIO times workload FAST's (repeatable)",
    )
    args = ap.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(args.baseline.read_text())
    stages = list(args.stages) if args.stages else list(DEFAULT_STAGES)
    lines, failures = compare(
        fresh, baseline, stages, args.max_ratio, args.floor_seconds
    )
    if args.speedups:
        sp_lines, sp_failures = check_speedups(fresh, args.speedups)
        lines += sp_lines
        failures += sp_failures
    for line in lines:
        print(line)
    if not lines:
        print(
            f"no workload in {args.fresh} has any of stages {stages!r} in "
            f"common with {args.baseline}",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(
            f"REGRESSION: {len(failures)} gated reading(s) failed",
            file=sys.stderr,
        )
        return 1
    print(f"OK: all {len(lines)} gated reading(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
