"""Ablation: reduced-product state space vs the full Kronecker space.

Paper §5.4 motivates the reduction ("a factor of almost K!"); this
benchmark measures it.  Both backends must produce identical epochs.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.experiments.params import BASE_APP
from repro.laqt.product_space import FullProductModel

K, N = 4, 12


@pytest.fixture(scope="module")
def spec():
    return central_cluster(BASE_APP)


@pytest.mark.benchmark(group="reduced-vs-product")
def test_reduced_space(benchmark, spec):
    times = benchmark(lambda: TransientModel(spec, K).interdeparture_times(N))
    assert times.shape == (N,)


@pytest.mark.benchmark(group="reduced-vs-product")
def test_full_product_space(benchmark, spec, record_text):
    times = benchmark.pedantic(
        lambda: FullProductModel(spec, K).interdeparture_times(N),
        rounds=1,
        iterations=1,
    )
    reduced_model = TransientModel(spec, K)
    assert np.allclose(times, reduced_model.interdeparture_times(N), rtol=1e-10)
    full_model = FullProductModel(spec, K)
    record_text(
        "ablation_reduced_vs_product",
        f"K={K}: reduced D(K)={reduced_model.level_dim(K)} states, "
        f"full M^K={full_model.level_dim(K)} states "
        f"({full_model.level_dim(K) / reduced_model.level_dim(K):.1f}x reduction); "
        "epoch sequences identical to 1e-10",
    )
