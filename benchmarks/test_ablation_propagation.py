"""Ablation: cached Y·R propagators vs the per-epoch solve recurrence.

The design decision under test (ISSUE 4 tentpole): each refill epoch is
one gemv against a cached ``Y_K R_K`` propagator (built once per level by
a blocked multi-RHS solve), instead of an LU triangular solve plus two
sparse products per epoch.  Both backends must agree to ≤1e-12 on every
figure-class workload; the benchmark quantifies the per-epoch win on the
fig03- and fig04-class configurations and the H2 mixes swept by Fig. 3.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

#: (name, K, N) of the two headline workloads tracked in BENCH_transient.json
WORKLOADS = [("fig03_class", 5, 30), ("fig04_class", 8, 60)]


def _spec(scv: float = 10.0):
    return central_cluster(BASE_APP, {"rdisk": Shape.scv(scv)})


def _solve(propagation: str, K: int, N: int, scv: float = 10.0) -> np.ndarray:
    return TransientModel(_spec(scv), K, propagation=propagation).interdeparture_times(N)


@pytest.mark.benchmark(group="propagation-fig03")
def test_propagator_fig03_class(benchmark):
    times = benchmark(_solve, "propagator", 5, 30)
    assert times.shape == (30,)


@pytest.mark.benchmark(group="propagation-fig03")
def test_solve_fig03_class(benchmark):
    times = benchmark(_solve, "solve", 5, 30)
    assert times.shape == (30,)


@pytest.mark.benchmark(group="propagation-fig04")
def test_propagator_fig04_class(benchmark):
    times = benchmark(_solve, "propagator", 8, 60)
    assert times.shape == (60,)


@pytest.mark.benchmark(group="propagation-fig04")
def test_solve_fig04_class(benchmark):
    times = benchmark(_solve, "solve", 8, 60)
    assert times.shape == (60,)


def test_equivalence_all_workloads(record_text):
    """propagator ≡ solve to ≤1e-12 on both workload classes + H2 mixes."""
    worst = 0.0
    lines = []
    cases = [(name, K, N, 10.0) for name, K, N in WORKLOADS]
    cases += [(f"fig03_h2_c{scv:g}", 5, 30, scv) for scv in (1.0, 10.0, 50.0)]
    for name, K, N, scv in cases:
        fast = _solve("propagator", K, N, scv)
        slow = _solve("solve", K, N, scv)
        diff = float(np.max(np.abs(fast - slow)))
        worst = max(worst, diff)
        lines.append(f"{name}: max |propagator - solve| = {diff:.3e}")
        np.testing.assert_allclose(fast, slow, rtol=0.0, atol=1e-12)
    record_text(
        "ablation_propagation",
        "\n".join(lines)
        + f"\nworst-case deviation {worst:.3e} (gate: 1e-12)",
    )
