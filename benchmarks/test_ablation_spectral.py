"""Ablation: spectral epoch propagation vs the cached-gemv recurrence.

The design decision under test (ISSUE 8 tentpole): eigendecompose
``Y_K R_K`` once per model and evaluate any epoch — and the whole refill
portion of the makespan, as a geometric series — in closed form, instead
of stepping one gemv per refill epoch.  The refill cost becomes
independent of ``N``; the headline case is a fig03-class makespan at
``N = 10⁴``, where the stepped recurrence does 10⁴ − K gemvs and the
spectral engine does none.  Both backends must agree to ≤1e-10 on every
figure-class workload (the same bar the tentpole's acceptance pins), and
no workload here may trip the engine's fallback ladder.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

#: (name, K, N) of the two headline workloads tracked in BENCH_transient.json
WORKLOADS = [("fig03_class", 5, 30), ("fig04_class", 8, 60)]

#: the makespan workload where N-free refill pays off (≥10× acceptance bar)
BULK_N = 10_000


def _spec(scv: float = 10.0):
    return central_cluster(BASE_APP, {"rdisk": Shape.scv(scv)})


def _solve(propagation: str, K: int, N: int, scv: float = 10.0) -> np.ndarray:
    return TransientModel(_spec(scv), K, propagation=propagation).interdeparture_times(N)


def _makespan(propagation: str, K: int, N: int, scv: float = 10.0) -> float:
    return TransientModel(_spec(scv), K, propagation=propagation).makespan(N)


@pytest.mark.benchmark(group="spectral-fig03")
def test_spectral_fig03_class(benchmark):
    times = benchmark(_solve, "spectral", 5, 30)
    assert times.shape == (30,)


@pytest.mark.benchmark(group="spectral-fig03")
def test_propagator_fig03_class(benchmark):
    times = benchmark(_solve, "propagator", 5, 30)
    assert times.shape == (30,)


@pytest.mark.benchmark(group="spectral-makespan-n10k")
def test_spectral_makespan_n10k(benchmark):
    span = benchmark(_makespan, "spectral", 5, BULK_N)
    assert span > 0.0


@pytest.mark.benchmark(group="spectral-makespan-n10k")
def test_propagator_makespan_n10k(benchmark):
    span = benchmark(_makespan, "propagator", 5, BULK_N)
    assert span > 0.0


def test_equivalence_all_workloads(record_text):
    """spectral ≡ propagator to ≤1e-10 on both classes + H2 mixes, no fallback."""
    worst = 0.0
    lines = []
    cases = [(name, K, N, 10.0) for name, K, N in WORKLOADS]
    cases += [(f"fig03_h2_c{scv:g}", 5, 30, scv) for scv in (1.0, 10.0, 50.0)]
    for name, K, N, scv in cases:
        model = TransientModel(_spec(scv), K, propagation="spectral")
        fast = model.interdeparture_times(N)
        slow = _solve("propagator", K, N, scv)
        assert model.spectral_fallback is None, (
            f"{name}: spectral engine unexpectedly declined "
            f"({model.spectral_fallback})"
        )
        diff = float(np.max(np.abs(fast - slow)))
        worst = max(worst, diff)
        lines.append(f"{name}: max |spectral - propagator| = {diff:.3e}")
        np.testing.assert_allclose(fast, slow, rtol=0.0, atol=1e-10)
    record_text(
        "ablation_spectral",
        "\n".join(lines)
        + f"\nworst-case deviation {worst:.3e} (gate: 1e-10)",
    )


def test_bulk_makespan_equivalence():
    """The N=10⁴ geometric-series makespan matches the stepped recurrence."""
    fast = _makespan("spectral", 5, BULK_N)
    slow = _makespan("propagator", 5, BULK_N)
    assert fast == pytest.approx(slow, rel=1e-9)
