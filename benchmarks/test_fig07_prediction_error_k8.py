"""Figure 7: exponential-assumption error vs C², K=8 central cluster.

Paper shape: monotone growth with C².  Documented deviation: with the
canonical heavy-load parameters the K=8 remote disk saturates and a
saturated queue's throughput is insensitive to C², so the error magnitude
stays below the paper's (whose workload split is unspecified); the
monotone shape and sign are reproduced.  See EXPERIMENTS.md.
"""

import numpy as np

from repro.experiments import fig07


def test_fig07_prediction_error_k8(benchmark, record):
    result = benchmark.pedantic(fig07.run, rounds=1, iterations=1)
    record(result)

    for s in result.series.values():
        assert s[0] == 0.0
        assert np.all(np.diff(s) > 0)
        assert s[-1] > 5.0
