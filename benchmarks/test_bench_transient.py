"""BENCH_transient.json emitter: median-of-5 transient-solver timings.

Profiles the two headline workload classes through the observability
layer (:func:`repro.obs.profile.profile_spec`) and merges the records
into ``benchmarks/results/BENCH_transient.json`` — the repo's
perf-trajectory file, schema ``repro-bench-transient/1``.  The CLI
(``repro profile``) writes the same format, so trends can be compared
across machines and commits.

Workloads:

* ``fig03_central_k5``  — central cluster, shared disk C² = 10, K=5, N=30
  (the paper's Figure 3 configuration, D(5) = 91);
* ``fig04_central_k8``  — the same application at K=8, N=60
  (Figure 4's scale, D(8) = 285);
* ``fig03_n10k_propagator`` / ``fig03_n10k_spectral`` — the fig03 class
  pushed to N = 10⁴, once per epoch backend.  The pair exists so CI can
  gate the spectral engine's N-free refill as a *relative* property
  (``check_bench_regression.py --min-speedup``, ≥10x): absolute wall
  times drift across machines, the ratio does not.
"""

from __future__ import annotations

import json

import pytest

from repro.clusters import ApplicationModel, central_cluster
from repro.distributions import Shape
from repro.obs.profile import profile_spec, validate_bench, write_bench

REPEATS = 5


def _spec():
    return central_cluster(ApplicationModel(), {"rdisk": Shape.scv(10.0)})


@pytest.mark.parametrize(
    "name, K, N, propagation",
    [
        ("fig03_central_k5", 5, 30, "propagator"),
        ("fig04_central_k8", 8, 60, "propagator"),
        ("fig03_n10k_propagator", 5, 10_000, "propagator"),
        ("fig03_n10k_spectral", 5, 10_000, "spectral"),
    ],
    ids=["fig03_k5", "fig04_k8", "n10k_propagator", "n10k_spectral"],
)
def test_bench_transient(results_dir, record_text, name, K, N, propagation):
    result = profile_spec(
        _spec(), K, N, repeats=REPEATS, name=name, propagation=propagation
    )

    # Sanity: the spans must account for (nearly) all of the wall time,
    # and the solve must reproduce the known makespan regime.
    assert result.coverage > 0.90, f"span coverage {result.coverage:.1%}"
    assert result.level_dims[-1] == (91 if K == 5 else 285)
    assert result.makespan > 0.0

    path = write_bench(
        results_dir / "BENCH_transient.json",
        [result.bench_record()],
        source="benchmarks/test_bench_transient.py",
    )
    doc = validate_bench(path)
    assert any(w["name"] == name for w in doc["workloads"])
    record_text(f"bench_transient_{name}", result.format_table())


def test_bench_file_is_wellformed(results_dir):
    """After the emitters ran, the merged file must pass the CI gate."""
    path = results_dir / "BENCH_transient.json"
    if not path.exists():
        pytest.skip("emitters did not run in this session")
    doc = validate_bench(path)
    names = {w["name"] for w in doc["workloads"]}
    assert {"fig03_central_k5", "fig04_central_k8"} <= names
    by_name = {w["name"]: w for w in doc["workloads"]}
    if {"fig03_n10k_propagator", "fig03_n10k_spectral"} <= names:
        slow = by_name["fig03_n10k_propagator"]["wall_seconds"]["median"]
        fast = by_name["fig03_n10k_spectral"]["wall_seconds"]["median"]
        assert slow / fast >= 10.0, (
            f"spectral N=10k speedup {slow / fast:.1f}x under the 10x bar"
        )
    # Round-trip: the file is plain JSON, stable under re-serialization.
    assert json.loads(path.read_text())["schema"] == "repro-bench-transient/1"
