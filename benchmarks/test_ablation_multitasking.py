"""Ablation: multiprogramming level on a time-shared central cluster.

The paper's "multitasking" extension (§5): admit ``mpl`` tasks per
workstation and let CPUs/local disks time-share (K-server pools).  The
sweep shows throughput gains with diminishing returns as the shared
remote disk and the pooled CPUs saturate — and that ``mpl = 1`` is exactly
the base dedicated model.
"""

import numpy as np
import pytest

from repro.clusters import central_cluster, central_cluster_multitasking
from repro.core import TransientModel, solve_steady_state
from repro.experiments.params import DEDICATED_APP
from repro.experiments.result import ExperimentResult

K = 4
MPLS = (1, 2, 3, 4)


def _sweep():
    spec = central_cluster_multitasking(DEDICATED_APP, K)
    t_ss = []
    for mpl in MPLS:
        model = TransientModel(spec, K * mpl)
        t_ss.append(solve_steady_state(model).interdeparture_time)
    return ExperimentResult(
        experiment="ablation_multitasking",
        description=f"steady-state inter-departure vs multiprogramming level, K={K}",
        x_label="mpl",
        x=np.array(MPLS, dtype=float),
        series={"t_ss": np.array(t_ss)},
    )


def test_ablation_multitasking(benchmark, record):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record(result)

    t = result.series["t_ss"]
    # Time-sharing more tasks improves throughput...
    assert np.all(np.diff(t) < 1e-12)
    # ...with diminishing returns.
    gains = -np.diff(t)
    assert np.all(np.diff(gains) < 1e-12)
    # mpl=1 equals the dedicated base model.
    base = solve_steady_state(
        TransientModel(central_cluster(DEDICATED_APP), K)
    ).interdeparture_time
    assert t[0] == pytest.approx(base, rel=1e-10)
