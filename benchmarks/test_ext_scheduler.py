"""Extension benchmark: scheduling-overhead sweep (paper §5's add-on)."""

import numpy as np

from repro.experiments import ext_scheduler


def test_ext_scheduler(benchmark, record):
    result = benchmark.pedantic(ext_scheduler.run, rounds=1, iterations=1)
    record(result)

    spans = result.series["makespan"]
    sp = result.series["speedup"]
    x = result.x
    # Overhead always costs.
    assert np.all(np.diff(spans) > 0)
    assert np.all(np.diff(sp) < 0)
    # Small-overhead regime: near-additive cost, well under the
    # full serialized dispatch demand N·cycles·overhead.
    cycles = result.meta["cycles"]
    n = result.meta["N"]
    added = spans[1] - spans[0]
    assert added < n * cycles * (x[1] - x[0])
    # The marginal cost grows once the dispatcher becomes contended.
    slopes = np.diff(spans) / np.diff(x)
    assert slopes[-1] > slopes[0] * 1.5
