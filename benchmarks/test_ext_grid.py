"""Extension benchmark: grid data locality (two-level topology)."""

import numpy as np

from repro.experiments import ext_grid


def test_ext_grid(benchmark, record):
    result = benchmark.pedantic(ext_grid.run, rounds=1, iterations=1)
    record(result)

    spans = result.series["makespan"]
    wan = result.series["wan_util"]
    # Losing locality always costs (x descends, makespan must ascend).
    assert np.all(np.diff(spans) > 0)
    # The WAN is idle at full locality and loads up monotonically.
    assert wan[0] == 0.0
    assert np.all(np.diff(wan) > 0)
    # At 20 % locality the link is the dominant shared resource.
    assert wan[-1] > 0.5
