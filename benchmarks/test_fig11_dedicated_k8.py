"""Figure 11: inter-departure vs task order, N=30, K=8 central cluster,
dedicated CPU ∈ {Exp, E3, H2 C²=2} (as Fig. 10 for the central system)."""

import numpy as np

from repro.experiments import fig11


def test_fig11_dedicated_k8(benchmark, record):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    record(result)

    exp, e3, h2 = result.series["exp"], result.series["E3"], result.series["H2(C2=2)"]
    mid = 15
    assert np.isclose(e3[mid], exp[mid], rtol=1e-3)
    assert np.isclose(h2[mid], exp[mid], rtol=2e-2)
    # Draining tails rise for every distribution.
    for s in result.series.values():
        assert np.all(np.diff(s[-6:]) > 0)
    # H2 drains slower than Erlang (heavier task-time tail).
    assert h2[-1] > e3[-1]
