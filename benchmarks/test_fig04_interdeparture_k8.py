"""Figure 4: inter-departure vs task order, N=30, K=8 central cluster.

Same as Figure 3 on more workstations: the steady-state region shrinks
(more of the 30 epochs belong to fill and drain), the paper's warning
about finite workloads on larger clusters.
"""

import numpy as np

from repro.core import TransientModel, decompose_regions
from repro.experiments import fig03, fig04
from repro.experiments.params import BASE_APP
from repro.clusters import central_cluster
from repro.distributions import Shape


def test_fig04_interdeparture_k8(benchmark, record):
    result = benchmark.pedantic(fig04.run, rounds=1, iterations=1)
    record(result)

    exp = result.series["exp"]
    h50 = result.series["H2(C2=50)"]
    assert h50[10] > exp[10]
    for s in result.series.values():
        assert np.all(np.diff(s[-6:]) > 0)


def test_fig04_steady_region_shrinks_with_K(benchmark, record_text):
    """Cross-figure claim: K=8 leaves fewer steady epochs than K=5."""
    spec = central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})

    def _widths():
        return {
            K: decompose_regions(TransientModel(spec, K), 30).steady_width
            for K in (5, 8)
        }

    widths = benchmark.pedantic(_widths, rounds=1, iterations=1)
    record_text(
        "fig04_region_widths",
        "\n".join(f"K={k}: steady epochs = {w}" for k, w in widths.items()),
    )
    assert widths[8] < widths[5]
