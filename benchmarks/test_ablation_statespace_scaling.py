"""Ablation: state-space growth and solver cost vs K.

Quantifies the paper's D_RP(k) = C(M+k−1, k) scaling for the central
(4-station, constant in K) and distributed (K+2 stations) architectures,
and the wall-clock cost of one full transient solve at each size.
"""

import time

import numpy as np
import pytest

from repro.clusters import central_cluster, distributed_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP


def _profile(kind_builder, Ks, N):
    rows = []
    for K in Ks:
        spec = kind_builder(K)
        t0 = time.perf_counter()
        model = TransientModel(spec, K)
        span = model.makespan(N)
        dt = time.perf_counter() - t0
        rows.append((K, model.level_dim(K), span, dt))
    return rows


@pytest.mark.benchmark(group="statespace-scaling")
def test_central_scaling(benchmark, record_text):
    rows = benchmark.pedantic(
        _profile,
        args=(
            lambda K: central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)}),
            (2, 4, 6, 8, 10),
            30,
        ),
        rounds=1,
        iterations=1,
    )
    dims = [r[1] for r in rows]
    assert all(b > a for a, b in zip(dims, dims[1:]))  # polynomial growth in K
    record_text(
        "ablation_statespace_central",
        "\n".join(
            f"K={K}: D(K)={dim}, makespan(30)={span:.3f}, solve={dt * 1e3:.1f} ms"
            for K, dim, span, dt in rows
        ),
    )


@pytest.mark.benchmark(group="statespace-scaling")
def test_distributed_scaling(benchmark, record_text):
    rows = benchmark.pedantic(
        _profile,
        args=(
            lambda K: distributed_cluster(
                BASE_APP, K, shapes={"disk": Shape.hyperexp(10.0)}
            ),
            (2, 3, 4, 5),
            30,
        ),
        rounds=1,
        iterations=1,
    )
    dims = np.array([r[1] for r in rows])
    # Distributed growth is much steeper: stations scale with K too.
    growth = dims[1:] / dims[:-1]
    assert np.all(growth > 2.0)
    record_text(
        "ablation_statespace_distributed",
        "\n".join(
            f"K={K}: D(K)={dim}, makespan(30)={span:.3f}, solve={dt * 1e3:.1f} ms"
            for K, dim, span, dt in rows
        ),
    )
