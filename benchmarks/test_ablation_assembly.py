"""Ablation: vectorized operator assembly vs the pure-Python reference.

The design decision under test (ISSUE 3 tentpole): level operators are
assembled from precomputed automaton tables with whole-level numpy
batches, not per-state Python loops.  Both backends must produce
bit-identical operators on the figure specs; the benchmark quantifies the
assembly speedup on the fig04-class workload (K=8, D(8)=285).
"""

import numpy as np
import pytest

from repro.clusters import central_cluster
from repro.core import TransientModel
from repro.distributions import Shape
from repro.experiments.params import BASE_APP

K = 8


def _spec():
    return central_cluster(BASE_APP, {"rdisk": Shape.hyperexp(10.0)})


def _build_all(assembly: str) -> TransientModel:
    model = TransientModel(_spec(), K, assembly=assembly)
    for k in range(1, K + 1):
        model.level(k)
    return model


@pytest.mark.benchmark(group="assembly")
def test_vectorized_assembly(benchmark):
    model = benchmark(_build_all, "vectorized")
    assert model.level_dim(K) == 285


@pytest.mark.benchmark(group="assembly")
def test_reference_assembly(benchmark, record_text):
    model = benchmark.pedantic(_build_all, args=("reference",), rounds=3, iterations=1)
    fast = _build_all("vectorized")
    for k in range(1, K + 1):
        a, b = fast.level(k), model.level(k)
        assert np.array_equal(a.rates, b.rates)
        assert np.array_equal(a.P.toarray(), b.P.toarray())
        assert np.array_equal(a.Q.toarray(), b.Q.toarray())
        assert np.array_equal(a.R.toarray(), b.R.toarray())
    record_text(
        "ablation_assembly",
        f"K={K}, top-level dim={fast.level_dim(K)}\n"
        "vectorized and reference assembly are bit-identical across all "
        "levels (see pytest-benchmark table for timing)",
    )
