"""Figure 10: inter-departure vs task order, N=20, K=5 distributed cluster,
dedicated CPU ∈ {Exp, E3, H2 C²=2}.

Paper shape: all three distributions converge to the *same* steady-state
value (the product-form limit; delay stations are insensitive); E3 differs
from exponential only slightly and mostly in the first epochs, H2 changes
the transient and draining regions visibly.
"""

import numpy as np

from repro.experiments import fig10


def test_fig10_dedicated_k5(benchmark, record):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    record(result)

    exp, e3, h2 = result.series["exp"], result.series["E3"], result.series["H2(C2=2)"]
    mid = 12
    # Same steady state for all three (paper §6.2.1).
    assert np.isclose(e3[mid], exp[mid], rtol=1e-3)
    assert np.isclose(h2[mid], exp[mid], rtol=2e-2)
    # E3 hugs the exponential curve after warm-up...
    assert np.allclose(e3[3:mid], exp[3:mid], rtol=5e-3)
    # ...while H2's warm-up deviation is larger than E3's.
    dev_h2 = np.abs(h2[:5] - exp[:5]).max()
    dev_e3 = np.abs(e3[1:5] - exp[1:5]).max()
    assert dev_h2 > dev_e3
